(* Unit tests for the extended NF² data model substrate. *)

module Schema = Nf2.Schema
module Value = Nf2.Value
module Path = Nf2.Path
module Oid = Nf2.Oid

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ Path *)

let test_path_roundtrip () =
  let path = Path.of_string "c_objects.obj_id" in
  check_string "to_string" "c_objects.obj_id" (Path.to_string path);
  check (Alcotest.list Alcotest.string) "to_list" [ "c_objects"; "obj_id" ]
    (Path.to_list path)

let test_path_root () =
  check_bool "root is empty" true (Path.equal Path.root (Path.of_string ""));
  check_int "root length" 0 (Path.length Path.root);
  check_bool "root has no parent" true (Path.parent Path.root = None);
  check_bool "root has no last" true (Path.last Path.root = None)

let test_path_child_parent () =
  let path = Path.child (Path.child Path.root "robots") "robot_id" in
  check_string "child builds" "robots.robot_id" (Path.to_string path);
  (match Path.parent path with
   | Some parent -> check_string "parent" "robots" (Path.to_string parent)
   | None -> Alcotest.fail "expected a parent");
  check_string "last" "robot_id"
    (Option.value ~default:"?" (Path.last path))

let test_path_prefix () =
  let robots = Path.of_string "robots" in
  let robot_id = Path.of_string "robots.robot_id" in
  check_bool "prefix holds" true (Path.is_prefix ~prefix:robots robot_id);
  check_bool "equal is prefix" true (Path.is_prefix ~prefix:robots robots);
  check_bool "root is prefix of all" true
    (Path.is_prefix ~prefix:Path.root robot_id);
  check_bool "reverse fails" false (Path.is_prefix ~prefix:robot_id robots);
  check_bool "sibling fails" false
    (Path.is_prefix ~prefix:(Path.of_string "cells") robot_id)

let test_path_compare () =
  let sorted =
    List.sort Path.compare
      [ Path.of_string "robots.robot_id"; Path.of_string "c_objects";
        Path.of_string "robots" ]
  in
  check
    (Alcotest.list Alcotest.string)
    "sorted order"
    [ "c_objects"; "robots"; "robots.robot_id" ]
    (List.map Path.to_string sorted)

(* ------------------------------------------------------------------- Oid *)

let test_oid_roundtrip () =
  let oid = Oid.make ~relation:"effectors" ~key:"e1" in
  check_string "to_string" "effectors/e1" (Oid.to_string oid);
  match Oid.of_string "effectors/e1" with
  | Some parsed -> check_bool "equal" true (Oid.equal oid parsed)
  | None -> Alcotest.fail "of_string failed"

let test_oid_of_string_invalid () =
  check_bool "no slash" true (Oid.of_string "effectors" = None);
  check_bool "empty relation" true (Oid.of_string "/e1" = None);
  check_bool "empty key" true (Oid.of_string "effectors/" = None)

let test_oid_compare () =
  let a = Oid.make ~relation:"cells" ~key:"c1" in
  let b = Oid.make ~relation:"effectors" ~key:"e1" in
  check_bool "ordered by relation" true (Oid.compare a b < 0);
  check_bool "self" true (Oid.compare a a = 0)

(* ---------------------------------------------------------------- Schema *)

let test_schema_validate_ok () =
  check_bool "cells valid" true
    (Schema.validate Workload.Figure1.cells_schema = Ok ());
  check_bool "effectors valid" true
    (Schema.validate Workload.Figure1.effectors_schema = Ok ())

let test_schema_validate_missing_key () =
  let bad =
    Schema.relation ~name:"broken" ~segment:"seg" ~key:"nope"
      [ Schema.field "id" (Schema.Atomic Schema.Str) ]
  in
  match Schema.validate bad with
  | Error (Schema.Missing_key_field "nope") -> ()
  | Error _ | Ok () -> Alcotest.fail "expected Missing_key_field"

let test_schema_validate_key_not_atomic () =
  let bad =
    Schema.relation ~name:"broken" ~segment:"seg" ~key:"id"
      [ Schema.field "id" (Schema.Set (Schema.Atomic Schema.Str)) ]
  in
  match Schema.validate bad with
  | Error (Schema.Key_not_atomic "id") -> ()
  | Error _ | Ok () -> Alcotest.fail "expected Key_not_atomic"

let test_schema_validate_key_is_ref () =
  let bad =
    Schema.relation ~name:"broken" ~segment:"seg" ~key:"id"
      [ Schema.field "id" (Schema.Atomic (Schema.Ref "other")) ]
  in
  match Schema.validate bad with
  | Error (Schema.Key_is_reference "id") -> ()
  | Error _ | Ok () -> Alcotest.fail "expected Key_is_reference"

let test_schema_validate_duplicate_field () =
  let bad =
    Schema.relation ~name:"broken" ~segment:"seg" ~key:"id"
      [ Schema.field "id" (Schema.Atomic Schema.Str);
        Schema.field "id" (Schema.Atomic Schema.Int) ]
  in
  match Schema.validate bad with
  | Error (Schema.Duplicate_field _) -> ()
  | Error _ | Ok () -> Alcotest.fail "expected Duplicate_field"

let test_schema_validate_nested_duplicate () =
  let bad =
    Schema.relation ~name:"broken" ~segment:"seg" ~key:"id"
      [ Schema.field "id" (Schema.Atomic Schema.Str);
        Schema.field "inner"
          (Schema.Tuple
             [ Schema.field "x" (Schema.Atomic Schema.Int);
               Schema.field "x" (Schema.Atomic Schema.Int) ]) ]
  in
  match Schema.validate bad with
  | Error (Schema.Duplicate_field _) -> ()
  | Error _ | Ok () -> Alcotest.fail "expected nested Duplicate_field"

let test_schema_validate_empty_tuple () =
  let bad =
    Schema.relation ~name:"broken" ~segment:"seg" ~key:"id"
      [ Schema.field "id" (Schema.Atomic Schema.Str);
        Schema.field "inner" (Schema.Tuple []) ]
  in
  match Schema.validate bad with
  | Error (Schema.Empty_tuple _) -> ()
  | Error _ | Ok () -> Alcotest.fail "expected Empty_tuple"

let test_schema_find_attr () =
  let cells = Workload.Figure1.cells_schema in
  (match Schema.find_attr cells (Path.of_string "cell_id") with
   | Some (Schema.Atomic Schema.Str) -> ()
   | Some _ | None -> Alcotest.fail "cell_id should be atomic str");
  (match Schema.find_attr cells (Path.of_string "robots") with
   | Some (Schema.List _) -> ()
   | Some _ | None -> Alcotest.fail "robots should be a list");
  (match Schema.find_attr cells (Path.of_string "robots.effectors") with
   | Some (Schema.Set (Schema.Atomic (Schema.Ref "effectors"))) -> ()
   | Some _ | None -> Alcotest.fail "robots.effectors should be set of refs");
  (match Schema.find_attr cells (Path.of_string "robots.robot_id") with
   | Some (Schema.Atomic Schema.Str) -> ()
   | Some _ | None -> Alcotest.fail "robots.robot_id should be atomic");
  check_bool "missing path" true
    (Schema.find_attr cells (Path.of_string "robots.nope") = None);
  match Schema.find_attr cells Path.root with
  | Some (Schema.Tuple _) -> ()
  | Some _ | None -> Alcotest.fail "root should be the complex tuple"

let test_schema_reference_paths () =
  let refs = Schema.reference_paths Workload.Figure1.cells_schema in
  check_int "one reference path" 1 (List.length refs);
  match refs with
  | [ (path, target) ] ->
    check_string "path" "robots.effectors" (Path.to_string path);
    check_string "target" "effectors" target
  | _ -> Alcotest.fail "unexpected reference paths"

let test_schema_attr_paths () =
  let paths = Schema.attr_paths Workload.Figure1.cells_schema in
  check
    (Alcotest.list Alcotest.string)
    "depth-first attribute paths"
    [ "cell_id"; "c_objects"; "c_objects.obj_id"; "c_objects.obj_name";
      "robots"; "robots.robot_id"; "robots.trajectory"; "robots.effectors" ]
    (List.map Path.to_string paths)

let test_schema_depth () =
  (* object tuple (1) + robots collection (1) + member tuple (1) + effectors
     collection (1) = 4 *)
  check_int "cells depth" 4 (Schema.depth Workload.Figure1.cells_schema);
  check_int "effectors depth" 1
    (Schema.depth Workload.Figure1.effectors_schema)

(* ----------------------------------------------------------------- Value *)

let effector_type = Schema.Tuple Workload.Figure1.effectors_schema.Schema.fields

let test_value_typecheck_ok () =
  let value = Workload.Figure1.effector ~key:"e1" ~tool:"t1" in
  check_bool "well-typed" true (Value.typecheck effector_type value = Ok ())

let test_value_typecheck_wrong_atom () =
  let value = Value.Tuple [ ("eff_id", Value.Int 1); ("tool", Value.Str "t") ] in
  match Value.typecheck effector_type value with
  | Error { at; _ } -> check_string "error location" "eff_id" (Path.to_string at)
  | Ok () -> Alcotest.fail "expected type error"

let test_value_typecheck_missing_field () =
  let value = Value.Tuple [ ("eff_id", Value.Str "e1") ] in
  check_bool "missing field rejected" true
    (Result.is_error (Value.typecheck effector_type value))

let test_value_typecheck_extra_field () =
  let value =
    Value.Tuple
      [ ("eff_id", Value.Str "e1"); ("tool", Value.Str "t");
        ("extra", Value.Int 1) ]
  in
  check_bool "extra field rejected" true
    (Result.is_error (Value.typecheck effector_type value))

let test_value_typecheck_field_order () =
  let value = Value.Tuple [ ("tool", Value.Str "t"); ("eff_id", Value.Str "e") ] in
  check_bool "order matters" true
    (Result.is_error (Value.typecheck effector_type value))

let test_value_typecheck_ref_target () =
  let attr = Schema.Atomic (Schema.Ref "effectors") in
  check_bool "right target" true
    (Value.typecheck attr (Value.ref_to ~relation:"effectors" ~key:"e1")
     = Ok ());
  check_bool "wrong target" true
    (Result.is_error
       (Value.typecheck attr (Value.ref_to ~relation:"cells" ~key:"c1")))

let test_value_typecheck_object () =
  let cell =
    Workload.Figure1.cell ~key:"c1"
      ~objects:[ Workload.Figure1.cell_object ~id:1 ~name:"o1" ]
      ~robots:
        [ Workload.Figure1.robot ~key:"r1" ~trajectory:"tr1"
            ~effectors:[ "e1" ] ]
  in
  check_bool "cell object well-typed" true
    (Value.typecheck_object Workload.Figure1.cells_schema cell = Ok ())

let test_value_key_of_object () =
  let value = Workload.Figure1.effector ~key:"e1" ~tool:"t1" in
  check_string "key" "e1"
    (Option.value ~default:"?"
       (Value.key_of_object Workload.Figure1.effectors_schema value))

let test_value_project () =
  let cell =
    Workload.Figure1.cell ~key:"c1"
      ~objects:
        [ Workload.Figure1.cell_object ~id:1 ~name:"o1";
          Workload.Figure1.cell_object ~id:2 ~name:"o2" ]
      ~robots:
        [ Workload.Figure1.robot ~key:"r1" ~trajectory:"tr1"
            ~effectors:[ "e1"; "e2" ] ]
  in
  let names = Value.project cell (Path.of_string "c_objects.obj_name") in
  check_int "two names" 2 (List.length names);
  check_bool "values" true
    (List.for_all
       (fun v -> match v with Value.Str _ -> true | _ -> false)
       names);
  let whole = Value.project cell Path.root in
  check_int "root projects self" 1 (List.length whole);
  check_int "missing path empty" 0
    (List.length (Value.project cell (Path.of_string "nope")))

let test_value_refs () =
  let cell =
    Workload.Figure1.cell ~key:"c1" ~objects:[]
      ~robots:
        [ Workload.Figure1.robot ~key:"r1" ~trajectory:"tr1"
            ~effectors:[ "e1"; "e2" ];
          Workload.Figure1.robot ~key:"r2" ~trajectory:"tr2"
            ~effectors:[ "e2" ] ]
  in
  let refs = Value.refs cell in
  check_int "three refs (duplicates kept)" 3 (List.length refs);
  check
    (Alcotest.list Alcotest.string)
    "depth-first order" [ "effectors/e1"; "effectors/e2"; "effectors/e2" ]
    (List.map Oid.to_string refs)

let test_value_equal () =
  let a = Workload.Figure1.effector ~key:"e1" ~tool:"t1" in
  let b = Workload.Figure1.effector ~key:"e1" ~tool:"t1" in
  let c = Workload.Figure1.effector ~key:"e1" ~tool:"t2" in
  check_bool "equal" true (Value.equal a b);
  check_bool "not equal" false (Value.equal a c)

(* -------------------------------------------------------------- Relation *)

let make_effectors () =
  match Nf2.Relation.create Workload.Figure1.effectors_schema with
  | Ok store -> store
  | Error _ -> Alcotest.fail "cannot create relation"

let test_relation_insert_find () =
  let store = make_effectors () in
  (match
     Nf2.Relation.insert store (Workload.Figure1.effector ~key:"e1" ~tool:"t1")
   with
   | Ok oid -> check_string "oid" "effectors/e1" (Oid.to_string oid)
   | Error _ -> Alcotest.fail "insert failed");
  check_bool "mem" true (Nf2.Relation.mem store "e1");
  check_int "cardinality" 1 (Nf2.Relation.cardinality store);
  match Nf2.Relation.find store "e1" with
  | Some value ->
    check_bool "roundtrip" true
      (Value.equal value (Workload.Figure1.effector ~key:"e1" ~tool:"t1"))
  | None -> Alcotest.fail "find failed"

let test_relation_duplicate_key () =
  let store = make_effectors () in
  let value = Workload.Figure1.effector ~key:"e1" ~tool:"t1" in
  check_bool "first" true (Result.is_ok (Nf2.Relation.insert store value));
  match Nf2.Relation.insert store value with
  | Error (Nf2.Relation.Duplicate_key "e1") -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected Duplicate_key"

let test_relation_replace () =
  let store = make_effectors () in
  let v1 = Workload.Figure1.effector ~key:"e1" ~tool:"t1" in
  let v2 = Workload.Figure1.effector ~key:"e1" ~tool:"t9" in
  check_bool "insert" true (Result.is_ok (Nf2.Relation.insert store v1));
  check_bool "replace" true (Result.is_ok (Nf2.Relation.replace store v2));
  check_int "still one" 1 (Nf2.Relation.cardinality store);
  match Nf2.Relation.find store "e1" with
  | Some value -> check_bool "updated" true (Value.equal value v2)
  | None -> Alcotest.fail "find failed"

let test_relation_delete () =
  let store = make_effectors () in
  let value = Workload.Figure1.effector ~key:"e1" ~tool:"t1" in
  check_bool "insert" true (Result.is_ok (Nf2.Relation.insert store value));
  check_bool "delete" true (Nf2.Relation.delete store "e1" = Ok ());
  check_bool "gone" false (Nf2.Relation.mem store "e1");
  match Nf2.Relation.delete store "e1" with
  | Error (Nf2.Relation.Unknown_key "e1") -> ()
  | Error _ | Ok () -> Alcotest.fail "expected Unknown_key"

let test_relation_typecheck_on_insert () =
  let store = make_effectors () in
  let bad = Value.Tuple [ ("eff_id", Value.Int 1); ("tool", Value.Str "t") ] in
  match Nf2.Relation.insert store bad with
  | Error (Nf2.Relation.Type_error _) -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected Type_error"

let test_relation_keys_sorted () =
  let store = make_effectors () in
  List.iter
    (fun key ->
      match
        Nf2.Relation.insert store (Workload.Figure1.effector ~key ~tool:"t")
      with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "insert failed")
    [ "e3"; "e1"; "e2" ];
  check
    (Alcotest.list Alcotest.string)
    "ascending keys" [ "e1"; "e2"; "e3" ] (Nf2.Relation.keys store)

(* --------------------------------------------------------------- Catalog *)

let test_catalog_shared () =
  let catalog = Nf2.Catalog.create () in
  check_bool "add effectors" true
    (Result.is_ok (Nf2.Catalog.add catalog Workload.Figure1.effectors_schema));
  check_bool "add cells" true
    (Result.is_ok (Nf2.Catalog.add catalog Workload.Figure1.cells_schema));
  check_bool "validate" true (Nf2.Catalog.validate catalog = Ok ());
  check_bool "effectors shared" true (Nf2.Catalog.is_shared catalog "effectors");
  check_bool "cells not shared" false (Nf2.Catalog.is_shared catalog "cells");
  check
    (Alcotest.list Alcotest.string)
    "shared list" [ "effectors" ]
    (Nf2.Catalog.shared_relations catalog);
  match Nf2.Catalog.referencing catalog "effectors" with
  | [ (relation, path) ] ->
    check_string "referencing relation" "cells" relation;
    check_string "referencing path" "robots.effectors" (Path.to_string path)
  | _ -> Alcotest.fail "expected exactly one referencing path"

let test_catalog_duplicate () =
  let catalog = Nf2.Catalog.create () in
  check_bool "first" true
    (Result.is_ok (Nf2.Catalog.add catalog Workload.Figure1.cells_schema));
  match Nf2.Catalog.add catalog Workload.Figure1.cells_schema with
  | Error (Nf2.Catalog.Duplicate_relation "cells") -> ()
  | Error _ | Ok () -> Alcotest.fail "expected Duplicate_relation"

let test_catalog_unknown_target () =
  let catalog = Nf2.Catalog.create () in
  check_bool "add cells only" true
    (Result.is_ok (Nf2.Catalog.add catalog Workload.Figure1.cells_schema));
  match Nf2.Catalog.validate catalog with
  | Error (Nf2.Catalog.Unknown_target { target = "effectors"; _ }) -> ()
  | Error _ | Ok () -> Alcotest.fail "expected Unknown_target"

let test_catalog_cycle () =
  let a =
    Schema.relation ~name:"a" ~segment:"s" ~key:"id"
      [ Schema.field "id" (Schema.Atomic Schema.Str);
        Schema.field "to_b" (Schema.Atomic (Schema.Ref "b")) ]
  in
  let b =
    Schema.relation ~name:"b" ~segment:"s" ~key:"id"
      [ Schema.field "id" (Schema.Atomic Schema.Str);
        Schema.field "to_a" (Schema.Atomic (Schema.Ref "a")) ]
  in
  let catalog = Nf2.Catalog.create () in
  check_bool "add a" true (Result.is_ok (Nf2.Catalog.add catalog a));
  check_bool "add b" true (Result.is_ok (Nf2.Catalog.add catalog b));
  match Nf2.Catalog.validate catalog with
  | Error (Nf2.Catalog.Recursive_reference _) -> ()
  | Error _ | Ok () -> Alcotest.fail "expected Recursive_reference"

let test_catalog_self_cycle () =
  let a =
    Schema.relation ~name:"a" ~segment:"s" ~key:"id"
      [ Schema.field "id" (Schema.Atomic Schema.Str);
        Schema.field "to_a" (Schema.Atomic (Schema.Ref "a")) ]
  in
  let catalog = Nf2.Catalog.create () in
  check_bool "add a" true (Result.is_ok (Nf2.Catalog.add catalog a));
  match Nf2.Catalog.validate catalog with
  | Error (Nf2.Catalog.Recursive_reference _) -> ()
  | Error _ | Ok () -> Alcotest.fail "expected self Recursive_reference"

let test_catalog_segments () =
  let catalog = Nf2.Catalog.create () in
  check_bool "add effectors" true
    (Result.is_ok (Nf2.Catalog.add catalog Workload.Figure1.effectors_schema));
  check_bool "add cells" true
    (Result.is_ok (Nf2.Catalog.add catalog Workload.Figure1.cells_schema));
  check
    (Alcotest.list Alcotest.string)
    "segments" [ "seg1"; "seg2" ]
    (Nf2.Catalog.segments catalog)

(* -------------------------------------------------------------- Database *)

let test_database_figure1 () =
  let db = Workload.Figure1.database () in
  check_string "name" "db1" (Nf2.Database.name db);
  check_int "two relations" 2 (List.length (Nf2.Database.relations db));
  check_int "no dangling refs" 0
    (List.length (Nf2.Database.check_ref_integrity db));
  match Nf2.Database.deref db (Oid.make ~relation:"effectors" ~key:"e2") with
  | Some value ->
    check_bool "deref e2" true
      (Value.equal value (Workload.Figure1.effector ~key:"e2" ~tool:"t2"))
  | None -> Alcotest.fail "deref failed"

let test_database_dangling_ref () =
  let db = Nf2.Database.create "db1" in
  (match Nf2.Database.create_relation db Workload.Figure1.effectors_schema with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "create effectors");
  (match Nf2.Database.create_relation db Workload.Figure1.cells_schema with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "create cells");
  (match
     Nf2.Database.insert db "cells"
       (Workload.Figure1.cell ~key:"c1" ~objects:[]
          ~robots:
            [ Workload.Figure1.robot ~key:"r1" ~trajectory:"t"
                ~effectors:[ "missing" ] ])
   with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "insert cell");
  match Nf2.Database.check_ref_integrity db with
  | [ { Nf2.Database.dangling; _ } ] ->
    check_string "dangling target" "effectors/missing"
      (Oid.to_string dangling)
  | violations ->
    Alcotest.failf "expected one violation, got %d" (List.length violations)

let test_database_rejects_cycle () =
  let db = Nf2.Database.create "db1" in
  let a =
    Schema.relation ~name:"a" ~segment:"s" ~key:"id"
      [ Schema.field "id" (Schema.Atomic Schema.Str);
        Schema.field "to_b" (Schema.Atomic (Schema.Ref "b")) ]
  in
  let b =
    Schema.relation ~name:"b" ~segment:"s" ~key:"id"
      [ Schema.field "id" (Schema.Atomic Schema.Str);
        Schema.field "to_a" (Schema.Atomic (Schema.Ref "a")) ]
  in
  check_bool "a ok" true (Result.is_ok (Nf2.Database.create_relation db a));
  match Nf2.Database.create_relation db b with
  | Error (Nf2.Database.Catalog_error (Nf2.Catalog.Recursive_reference _)) ->
    ()
  | Error _ | Ok _ -> Alcotest.fail "expected cycle rejection"

let test_database_unknown_relation () =
  let db = Nf2.Database.create "db1" in
  match
    Nf2.Database.insert db "nope" (Workload.Figure1.effector ~key:"x" ~tool:"t")
  with
  | Error (Nf2.Database.Unknown_relation "nope") -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected Unknown_relation"

(* ------------------------------------------------------------ Statistics *)

let test_statistics_figure1 () =
  let db = Workload.Figure1.database ~c_objects:5 () in
  let cells_store = Option.get (Nf2.Database.relation db "cells") in
  let stats = Nf2.Statistics.compute cells_store in
  check_int "cardinality" 1 stats.Nf2.Statistics.cardinality;
  check (Alcotest.float 0.001) "avg c_objects" 5.0
    (Nf2.Statistics.avg_collection_size stats (Path.of_string "c_objects"));
  check (Alcotest.float 0.001) "avg robots" 2.0
    (Nf2.Statistics.avg_collection_size stats (Path.of_string "robots"));
  check (Alcotest.float 0.001) "avg effectors per robot" 2.0
    (Nf2.Statistics.avg_collection_size stats
       (Path.of_string "robots.effectors"))

let test_statistics_selectivity () =
  let db = Workload.Figure1.database ~c_objects:4 () in
  let cells_store = Option.get (Nf2.Database.relation db "cells") in
  let stats = Nf2.Statistics.compute cells_store in
  check (Alcotest.float 0.001) "key selectivity" 1.0
    (Nf2.Statistics.selectivity_eq stats (Path.of_string "cell_id"));
  check (Alcotest.float 0.001) "robot_id selectivity" 0.5
    (Nf2.Statistics.selectivity_eq stats (Path.of_string "robots.robot_id"));
  check (Alcotest.float 0.001) "unknown path defaults to 1" 1.0
    (Nf2.Statistics.selectivity_eq stats (Path.of_string "nope"))

let test_statistics_estimate_matching () =
  let db =
    Workload.Generator.manufacturing
      { Workload.Generator.default_manufacturing with cells = 10 }
  in
  let cells_store = Option.get (Nf2.Database.relation db "cells") in
  let stats = Nf2.Statistics.compute cells_store in
  check (Alcotest.float 0.001) "scan matches all" 10.0
    (Nf2.Statistics.estimate_matching stats None);
  check (Alcotest.float 0.001) "key predicate matches one" 1.0
    (Nf2.Statistics.estimate_matching stats (Some (Path.of_string "cell_id")))

let test_statistics_empty () =
  let stats = Nf2.Statistics.empty "void" in
  check (Alcotest.float 0.001) "empty estimate" 0.0
    (Nf2.Statistics.estimate_matching stats None);
  check (Alcotest.float 0.001) "empty collection default" 1.0
    (Nf2.Statistics.avg_collection_size stats (Path.of_string "x"))

(* ------------------------------------------------------------- Generator *)

let test_generator_manufacturing () =
  let parameters =
    { Workload.Generator.cells = 3; objects_per_cell = 4; robots_per_cell = 2;
      effectors = 5; effectors_per_robot = 2; seed = 42 }
  in
  let db = Workload.Generator.manufacturing parameters in
  let cells_store = Option.get (Nf2.Database.relation db "cells") in
  let effectors_store = Option.get (Nf2.Database.relation db "effectors") in
  check_int "cells" 3 (Nf2.Relation.cardinality cells_store);
  check_int "effectors" 5 (Nf2.Relation.cardinality effectors_store);
  check_int "ref integrity" 0
    (List.length (Nf2.Database.check_ref_integrity db))

let test_generator_deterministic () =
  let parameters = Workload.Generator.default_manufacturing in
  let db1 = Workload.Generator.manufacturing parameters in
  let db2 = Workload.Generator.manufacturing parameters in
  let dump db =
    List.map
      (fun store ->
        List.map
          (fun (key, value) -> (key, Format.asprintf "%a" Value.pp value))
          (Nf2.Relation.objects store))
      (Nf2.Database.relations db)
  in
  check_bool "same database for same seed" true (dump db1 = dump db2)

let test_generator_shared_effector () =
  let db = Workload.Generator.shared_effector ~robots:7 in
  check_int "ref integrity" 0
    (List.length (Nf2.Database.check_ref_integrity db));
  let cells_store = Option.get (Nf2.Database.relation db "cells") in
  let cell = Option.get (Nf2.Relation.find cells_store "c1") in
  check_int "7 refs to e1" 7 (List.length (Value.refs cell))

let test_generator_deep () =
  let parameters =
    { Workload.Generator.depth = 2; fanout = 2; objects = 3; share = true;
      parts = 4; seed = 5 }
  in
  let db = Workload.Generator.deep parameters in
  check_int "ref integrity" 0
    (List.length (Nf2.Database.check_ref_integrity db));
  let assemblies = Option.get (Nf2.Database.relation db "assemblies") in
  check_int "objects" 3 (Nf2.Relation.cardinality assemblies);
  let tree = Option.get (Nf2.Relation.find assemblies "a1") in
  (* depth 2, fanout 2: 4 leaves, each referencing one part *)
  check_int "leaf refs" 4 (List.length (Value.refs tree));
  let leaf_path = Workload.Generator.deep_leaf_path ~depth:2 in
  check_string "leaf path" "tree.children.children.payload"
    (Path.to_string leaf_path);
  check_int "leaf payloads" 4 (List.length (Value.project tree leaf_path))

let test_generator_deep_no_share () =
  let parameters =
    { Workload.Generator.depth = 1; fanout = 3; objects = 2; share = false;
      parts = 0; seed = 5 }
  in
  let db = Workload.Generator.deep parameters in
  check_bool "no parts relation" true (Nf2.Database.relation db "parts" = None);
  let assemblies = Option.get (Nf2.Database.relation db "assemblies") in
  let tree = Option.get (Nf2.Relation.find assemblies "a1") in
  check_int "no refs" 0 (List.length (Value.refs tree))

let () =
  Alcotest.run "nf2"
    [ ("path",
       [ Alcotest.test_case "roundtrip" `Quick test_path_roundtrip;
         Alcotest.test_case "root" `Quick test_path_root;
         Alcotest.test_case "child/parent" `Quick test_path_child_parent;
         Alcotest.test_case "prefix" `Quick test_path_prefix;
         Alcotest.test_case "compare" `Quick test_path_compare ]);
      ("oid",
       [ Alcotest.test_case "roundtrip" `Quick test_oid_roundtrip;
         Alcotest.test_case "invalid" `Quick test_oid_of_string_invalid;
         Alcotest.test_case "compare" `Quick test_oid_compare ]);
      ("schema",
       [ Alcotest.test_case "validate ok" `Quick test_schema_validate_ok;
         Alcotest.test_case "missing key" `Quick
           test_schema_validate_missing_key;
         Alcotest.test_case "key not atomic" `Quick
           test_schema_validate_key_not_atomic;
         Alcotest.test_case "key is ref" `Quick test_schema_validate_key_is_ref;
         Alcotest.test_case "duplicate field" `Quick
           test_schema_validate_duplicate_field;
         Alcotest.test_case "nested duplicate" `Quick
           test_schema_validate_nested_duplicate;
         Alcotest.test_case "empty tuple" `Quick
           test_schema_validate_empty_tuple;
         Alcotest.test_case "find_attr" `Quick test_schema_find_attr;
         Alcotest.test_case "reference paths" `Quick
           test_schema_reference_paths;
         Alcotest.test_case "attr paths" `Quick test_schema_attr_paths;
         Alcotest.test_case "depth" `Quick test_schema_depth ]);
      ("value",
       [ Alcotest.test_case "typecheck ok" `Quick test_value_typecheck_ok;
         Alcotest.test_case "wrong atom" `Quick test_value_typecheck_wrong_atom;
         Alcotest.test_case "missing field" `Quick
           test_value_typecheck_missing_field;
         Alcotest.test_case "extra field" `Quick
           test_value_typecheck_extra_field;
         Alcotest.test_case "field order" `Quick
           test_value_typecheck_field_order;
         Alcotest.test_case "ref target" `Quick test_value_typecheck_ref_target;
         Alcotest.test_case "object" `Quick test_value_typecheck_object;
         Alcotest.test_case "key_of_object" `Quick test_value_key_of_object;
         Alcotest.test_case "project" `Quick test_value_project;
         Alcotest.test_case "refs" `Quick test_value_refs;
         Alcotest.test_case "equal" `Quick test_value_equal ]);
      ("relation",
       [ Alcotest.test_case "insert/find" `Quick test_relation_insert_find;
         Alcotest.test_case "duplicate key" `Quick test_relation_duplicate_key;
         Alcotest.test_case "replace" `Quick test_relation_replace;
         Alcotest.test_case "delete" `Quick test_relation_delete;
         Alcotest.test_case "typecheck on insert" `Quick
           test_relation_typecheck_on_insert;
         Alcotest.test_case "keys sorted" `Quick test_relation_keys_sorted ]);
      ("catalog",
       [ Alcotest.test_case "shared" `Quick test_catalog_shared;
         Alcotest.test_case "duplicate" `Quick test_catalog_duplicate;
         Alcotest.test_case "unknown target" `Quick test_catalog_unknown_target;
         Alcotest.test_case "cycle" `Quick test_catalog_cycle;
         Alcotest.test_case "self cycle" `Quick test_catalog_self_cycle;
         Alcotest.test_case "segments" `Quick test_catalog_segments ]);
      ("database",
       [ Alcotest.test_case "figure1" `Quick test_database_figure1;
         Alcotest.test_case "dangling ref" `Quick test_database_dangling_ref;
         Alcotest.test_case "rejects cycle" `Quick test_database_rejects_cycle;
         Alcotest.test_case "unknown relation" `Quick
           test_database_unknown_relation ]);
      ("statistics",
       [ Alcotest.test_case "figure1" `Quick test_statistics_figure1;
         Alcotest.test_case "selectivity" `Quick test_statistics_selectivity;
         Alcotest.test_case "estimate matching" `Quick
           test_statistics_estimate_matching;
         Alcotest.test_case "empty" `Quick test_statistics_empty ]);
      ("generator",
       [ Alcotest.test_case "manufacturing" `Quick test_generator_manufacturing;
         Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
         Alcotest.test_case "shared effector" `Quick
           test_generator_shared_effector;
         Alcotest.test_case "deep" `Quick test_generator_deep;
         Alcotest.test_case "deep no share" `Quick test_generator_deep_no_share
       ]) ]
