(* Tests for the Session façade: queries, updates, inserts, deletes,
   commit/abort with rollback, and the Figure 7 behaviour end to end through
   the public front door. *)

module Path = Nf2.Path
module Oid = Nf2.Oid
module Value = Nf2.Value
module Mode = Lockmgr.Lock_mode
module Table = Lockmgr.Lock_table

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make_session () =
  let session = Session.create (Workload.Figure1.database ()) in
  Session.set_library_read_only session ~relation:"effectors";
  session

let q2 =
  "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND \
   r.robot_id = 'r1' FOR UPDATE"

let q3 =
  "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND \
   r.robot_id = 'r2' FOR UPDATE"

let ok = function
  | Ok value -> value
  | Error error ->
    Alcotest.failf "unexpected error: %s"
      (Format.asprintf "%a" Query.Executor.pp_error error)

let trajectory_of session =
  let cell =
    Option.get
      (Nf2.Database.deref (Session.database session)
         (Oid.make ~relation:"cells" ~key:"c1"))
  in
  List.hd (Value.project cell (Path.of_string "robots.trajectory"))

let test_query_and_commit () =
  let session = make_session () in
  let txn = Session.begin_txn session in
  let rows = ok (Session.query session txn q2) in
  check_int "one row" 1 (List.length rows);
  Session.commit session txn;
  check_int "locks released" 0
    (List.length
       (Table.locks_of (Session.lock_table session) ~txn:txn.Txn.Transaction.id))

let test_figure7_through_facade () =
  let session = make_session () in
  let t2 = Session.begin_txn session in
  let t3 = Session.begin_txn session in
  let (_ : Query.Executor.row list) = ok (Session.query session t2 q2) in
  let (_ : Query.Executor.row list) = ok (Session.query session t3 q3) in
  check_int "T2 holds 10 locks" 10
    (List.length
       (Table.locks_of (Session.lock_table session) ~txn:t2.Txn.Transaction.id));
  check_int "T3 holds 10 locks" 10
    (List.length
       (Table.locks_of (Session.lock_table session) ~txn:t3.Txn.Transaction.id))

let test_update_commit_persists () =
  let session = make_session () in
  let txn = Session.begin_txn session in
  let updated =
    ok
      (Session.update session txn q2 (fun robot ->
           match robot with
           | Value.Tuple fields ->
             Value.Tuple
               (List.map
                  (fun (name, sub) ->
                    if String.equal name "trajectory" then
                      (name, Value.Str "replanned")
                    else (name, sub))
                  fields)
           | other -> other))
  in
  check_int "one row updated" 1 updated;
  Session.commit session txn;
  check_bool "persisted" true
    (Value.equal (trajectory_of session) (Value.Str "replanned"))

let test_abort_rolls_back () =
  let session = make_session () in
  let txn = Session.begin_txn session in
  let (_ : int) =
    ok
      (Session.update session txn q2 (fun robot ->
           match robot with
           | Value.Tuple fields ->
             Value.Tuple
               (List.map
                  (fun (name, sub) ->
                    if String.equal name "trajectory" then
                      (name, Value.Str "oops")
                    else (name, sub))
                  fields)
           | other -> other))
  in
  (match Session.abort session txn with
   | Ok 1 -> ()
   | Ok count -> Alcotest.failf "expected 1 record undone, got %d" count
   | Error _ -> Alcotest.fail "rollback failed");
  check_bool "change undone" true
    (Value.equal (trajectory_of session) (Value.Str "tr1"));
  check_int "locks released" 0
    (List.length
       (Table.locks_of (Session.lock_table session) ~txn:txn.Txn.Transaction.id))

let test_insert_abort_disappears () =
  let session = make_session () in
  let txn = Session.begin_txn session in
  let fresh =
    Workload.Figure1.cell ~key:"c2"
      ~objects:[ Workload.Figure1.cell_object ~id:1 ~name:"n" ]
      ~robots:[]
  in
  let oid = ok (Session.insert session txn "cells" fresh) in
  check_bool "inserted" true
    (Option.is_some (Nf2.Database.deref (Session.database session) oid));
  (match Session.abort session txn with
   | Ok 1 -> ()
   | Ok _ | Error _ -> Alcotest.fail "one undo record expected");
  check_bool "gone again" true
    (Nf2.Database.deref (Session.database session) oid = None)

let test_delete_and_commit () =
  let session = make_session () in
  let txn = Session.begin_txn session in
  let c1 = Oid.make ~relation:"cells" ~key:"c1" in
  ok (Session.delete session txn c1);
  Session.commit session txn;
  check_bool "deleted for good" true
    (Nf2.Database.deref (Session.database session) c1 = None)

let test_blocked_error_surfaces () =
  let session = make_session () in
  let t1 = Session.begin_txn session in
  let t2 = Session.begin_txn session in
  let (_ : Query.Executor.row list) = ok (Session.query session t1 q2) in
  (* same update by T2: X vs X on robot r1 *)
  match Session.query session t2 q2 with
  | Error (Query.Executor.Blocked { waiting = true; _ }) ->
    (* blocker commits; retry succeeds *)
    Session.commit session t1;
    let rows = ok (Session.query session t2 q2) in
    check_int "row after retry" 1 (List.length rows)
  | Error _ | Ok _ -> Alcotest.fail "expected a queued block"

let () =
  Alcotest.run "session"
    [ ("facade",
       [ Alcotest.test_case "query and commit" `Quick test_query_and_commit;
         Alcotest.test_case "figure 7" `Quick test_figure7_through_facade;
         Alcotest.test_case "update + commit" `Quick
           test_update_commit_persists;
         Alcotest.test_case "abort rolls back" `Quick test_abort_rolls_back;
         Alcotest.test_case "insert + abort" `Quick
           test_insert_abort_disappears;
         Alcotest.test_case "delete + commit" `Quick test_delete_and_commit;
         Alcotest.test_case "blocked then retry" `Quick
           test_blocked_error_surfaces ]) ]
