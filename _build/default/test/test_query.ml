(* Tests for the HDBL-like query facility: lexer/parser, analyzer, and the
   locking executor, exercised on the paper's queries Q1, Q2, Q3 (Fig. 3). *)

module Path = Nf2.Path
module Oid = Nf2.Oid
module Value = Nf2.Value
module Mode = Lockmgr.Lock_mode
module Table = Lockmgr.Lock_table
module Node_id = Colock.Node_id

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let q1 =
  "SELECT o FROM c IN cells, o IN c.c_objects WHERE c.cell_id = 'c1' FOR READ"

let q2 =
  "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND \
   r.robot_id = 'r1' FOR UPDATE"

let q3 =
  "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND \
   r.robot_id = 'r2' FOR UPDATE"

let parse_exn text =
  match Query.Parser.parse text with
  | Ok ast -> ast
  | Error error ->
    Alcotest.failf "parse failed: %s"
      (Format.asprintf "%a" Query.Parser.pp_error error)

(* ----------------------------------------------------------------- Parser *)

let test_parse_q1 () =
  let ast = parse_exn q1 in
  check_string "select" "o" ast.Query.Ast.select;
  check_int "two bindings" 2 (List.length ast.Query.Ast.bindings);
  (match ast.Query.Ast.bindings with
   | [ c; o ] ->
     check_string "c" "c" c.Query.Ast.var;
     (match c.Query.Ast.source with
      | Query.Ast.From_relation "cells" -> ()
      | _ -> Alcotest.fail "c should range over cells");
     (match o.Query.Ast.source with
      | Query.Ast.From_path ("c", path) ->
        check_string "o path" "c_objects" (Path.to_string path)
      | _ -> Alcotest.fail "o should range over c.c_objects")
   | _ -> Alcotest.fail "bindings");
  (match ast.Query.Ast.where with
   | [ { Query.Ast.cond_var = "c"; cond_path; value = Query.Ast.L_str "c1" } ] ->
     check_string "condition path" "cell_id" (Path.to_string cond_path)
   | _ -> Alcotest.fail "where");
  check_bool "read" true (ast.Query.Ast.clause = Query.Ast.For_read)

let test_parse_q2 () =
  let ast = parse_exn q2 in
  check_string "select" "r" ast.Query.Ast.select;
  check_int "two conditions" 2 (List.length ast.Query.Ast.where);
  check_bool "update" true (ast.Query.Ast.clause = Query.Ast.For_update)

let test_parse_case_insensitive () =
  let ast =
    parse_exn "select c from c in cells where c.cell_id = 'c1' for update"
  in
  check_string "select" "c" ast.Query.Ast.select

let test_parse_no_where () =
  let ast = parse_exn "SELECT c FROM c IN cells FOR READ" in
  check_int "no conditions" 0 (List.length ast.Query.Ast.where)

let test_parse_literals () =
  let ast =
    parse_exn
      "SELECT o FROM c IN cells, o IN c.c_objects WHERE o.obj_id = 42 FOR READ"
  in
  (match ast.Query.Ast.where with
   | [ { Query.Ast.value = Query.Ast.L_int 42; _ } ] -> ()
   | _ -> Alcotest.fail "int literal");
  let ast = parse_exn "SELECT c FROM c IN cells WHERE c.flag = true FOR READ" in
  match ast.Query.Ast.where with
  | [ { Query.Ast.value = Query.Ast.L_bool true; _ } ] -> ()
  | _ -> Alcotest.fail "bool literal"

let test_parse_delete_clause () =
  let ast = parse_exn "SELECT c FROM c IN cells FOR DELETE" in
  check_bool "delete" true (ast.Query.Ast.clause = Query.Ast.For_delete)

let test_parse_roundtrip_pp () =
  let ast = parse_exn q2 in
  let printed = Format.asprintf "%a" Query.Ast.pp ast in
  let reparsed = parse_exn printed in
  check_bool "pp then parse is stable" true (ast = reparsed)

let expect_parse_error text =
  match Query.Parser.parse text with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "expected parse error for %S" text

let test_parse_errors () =
  expect_parse_error "";
  expect_parse_error "SELECT FROM c IN cells FOR READ";
  expect_parse_error "SELECT c FROM c IN cells";
  expect_parse_error "SELECT c FROM c IN cells FOR WRITE";
  expect_parse_error "SELECT c FROM c IN cells WHERE c.x 'v' FOR READ";
  expect_parse_error "SELECT c FROM c IN cells WHERE c.x = 'unterminated FOR READ";
  expect_parse_error "SELECT c FROM c IN cells FOR READ trailing";
  expect_parse_error "SELECT select FROM select IN cells FOR READ"

(* --------------------------------------------------------------- Analyzer *)

let catalog () = Nf2.Database.catalog (Workload.Figure1.database ())

let analyze_exn text =
  match Query.Analyzer.analyze (catalog ()) (parse_exn text) with
  | Ok analysis -> analysis
  | Error error ->
    Alcotest.failf "analysis failed: %s"
      (Format.asprintf "%a" Query.Analyzer.pp_error error)

let test_analyze_q2 () =
  let analysis = analyze_exn q2 in
  check_string "target relation" "cells"
    analysis.Query.Analyzer.target.Query.Analyzer.relation;
  check_string "target path" "robots"
    (Path.to_string analysis.Query.Analyzer.target.Query.Analyzer.path);
  check_int "two object conditions" 2
    (List.length analysis.Query.Analyzer.object_conditions);
  match analysis.Query.Analyzer.accesses with
  | [ access ] ->
    check_string "access relation" "cells" access.Colock.Access.relation;
    check_string "access target" "robots"
      (Path.to_string access.Colock.Access.target);
    check_bool "update kind" true
      (access.Colock.Access.kind = Colock.Access.Update)
  | _ -> Alcotest.fail "one access expected"

let test_analyze_nested_variable () =
  (* e ranges over r.effectors: path robots.effectors *)
  let analysis =
    analyze_exn
      "SELECT e FROM c IN cells, r IN c.robots, e IN r.effectors FOR READ"
  in
  check_string "path composition" "robots.effectors"
    (Path.to_string analysis.Query.Analyzer.target.Query.Analyzer.path)

let test_analyze_unknown_relation () =
  match Query.Analyzer.analyze (catalog ()) (parse_exn "SELECT x FROM x IN nope FOR READ") with
  | Error (Query.Analyzer.Unknown_relation "nope") -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected Unknown_relation"

let test_analyze_unknown_variable () =
  match
    Query.Analyzer.analyze (catalog ())
      (parse_exn "SELECT y FROM c IN cells FOR READ")
  with
  | Error (Query.Analyzer.Unknown_variable "y") -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected Unknown_variable"

let test_analyze_not_a_collection () =
  match
    Query.Analyzer.analyze (catalog ())
      (parse_exn "SELECT x FROM c IN cells, x IN c.cell_id FOR READ")
  with
  | Error (Query.Analyzer.Not_a_collection _) -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected Not_a_collection"

let test_analyze_unknown_attribute () =
  match
    Query.Analyzer.analyze (catalog ())
      (parse_exn "SELECT c FROM c IN cells WHERE c.ghost = 'x' FOR READ")
  with
  | Error (Query.Analyzer.Unknown_attribute _) -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected Unknown_attribute"

let test_analyze_duplicate_variable () =
  match
    Query.Analyzer.analyze (catalog ())
      (parse_exn "SELECT c FROM c IN cells, c IN cells FOR READ")
  with
  | Error (Query.Analyzer.Duplicate_variable "c") -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected Duplicate_variable"

(* --------------------------------------------------------------- Executor *)

type env = {
  table : Table.t;
  rights : Authz.Rights.t;
  executor : Query.Executor.t;
}

let make_env ?(c_objects = 3) () =
  let db = Workload.Figure1.database ~c_objects () in
  let graph = Colock.Instance_graph.build db in
  let table = Table.create () in
  let rights = Authz.Rights.create () in
  let protocol = Colock.Protocol.create ~rights graph table in
  { table; rights; executor = Query.Executor.create db protocol }

let run_exn env ~txn text =
  match Query.Executor.run_string env.executor ~txn text with
  | Ok result -> result
  | Error error ->
    Alcotest.failf "query failed: %s"
      (Format.asprintf "%a" Query.Executor.pp_error error)

let held env ~txn resource =
  Table.held env.table ~txn ~resource

let mode_testable = Alcotest.testable Mode.pp Mode.equal
let check_mode label expected actual = Alcotest.check mode_testable label expected actual

let test_executor_q1_rows () =
  let env = make_env ~c_objects:3 () in
  let result = run_exn env ~txn:1 q1 in
  check_int "three c_objects" 3 (List.length result.Query.Executor.rows);
  (* Q1 locks the c_objects HoLU in S (sub-object granule, §3.2.1). *)
  check_mode "c_objects S" Mode.S
    (held env ~txn:1 "db1/seg1/cells/c1/c_objects");
  check_mode "cell c1 IS" Mode.IS (held env ~txn:1 "db1/seg1/cells/c1");
  check_mode "robots untouched" Mode.NL
    (held env ~txn:1 "db1/seg1/cells/c1/robots")

let test_executor_q2_locks_match_figure7 () =
  let env = make_env () in
  Authz.Rights.revoke_modify env.rights ~txn:2 ~relation:"effectors";
  let result = run_exn env ~txn:2 q2 in
  check_int "one robot row" 1 (List.length result.Query.Executor.rows);
  (match result.Query.Executor.rows with
   | [ { Query.Executor.node; _ } ] ->
     check_string "row node" "db1/seg1/cells/c1/robots/r1"
       (Node_id.to_resource node)
   | _ -> Alcotest.fail "one row");
  check_mode "db1 IX" Mode.IX (held env ~txn:2 "db1");
  check_mode "r1 X" Mode.X (held env ~txn:2 "db1/seg1/cells/c1/robots/r1");
  check_mode "robots IX" Mode.IX (held env ~txn:2 "db1/seg1/cells/c1/robots");
  check_mode "e1 S" Mode.S (held env ~txn:2 "db1/seg2/effectors/e1");
  check_mode "e2 S" Mode.S (held env ~txn:2 "db1/seg2/effectors/e2");
  check_mode "e3 free" Mode.NL (held env ~txn:2 "db1/seg2/effectors/e3");
  check_int "exactly 10 locks" 10 (List.length (Table.locks_of env.table ~txn:2))

let test_executor_q1_q2_concurrent () =
  let env = make_env () in
  Authz.Rights.revoke_modify env.rights ~txn:2 ~relation:"effectors";
  let (_ : Query.Executor.result_set) = run_exn env ~txn:1 q1 in
  let (_ : Query.Executor.result_set) = run_exn env ~txn:2 q2 in
  check_mode "Q1 holds" Mode.S (held env ~txn:1 "db1/seg1/cells/c1/c_objects");
  check_mode "Q2 holds" Mode.X (held env ~txn:2 "db1/seg1/cells/c1/robots/r1")

let test_executor_q2_q3_concurrent () =
  let env = make_env () in
  Authz.Rights.revoke_modify env.rights ~txn:2 ~relation:"effectors";
  Authz.Rights.revoke_modify env.rights ~txn:3 ~relation:"effectors";
  let (_ : Query.Executor.result_set) = run_exn env ~txn:2 q2 in
  let (_ : Query.Executor.result_set) = run_exn env ~txn:3 q3 in
  check_mode "T2 holds e2 S" Mode.S (held env ~txn:2 "db1/seg2/effectors/e2");
  check_mode "T3 holds e2 S" Mode.S (held env ~txn:3 "db1/seg2/effectors/e2")

let test_executor_blocked () =
  let env = make_env () in
  let (_ : Query.Executor.result_set) = run_exn env ~txn:2 q2 in
  (* Same query FOR UPDATE by another transaction without authorization
     restrictions: X vs X on r1. *)
  match Query.Executor.run_string env.executor ~txn:5 ~wait:false q2 with
  | Error (Query.Executor.Blocked { node; blockers; waiting }) ->
    check_string "blocked on r1" "db1/seg1/cells/c1/robots/r1"
      (Node_id.to_resource node);
    Alcotest.(check (list int)) "blocker" [ 2 ] blockers;
    check_bool "try-only" false waiting
  | Error _ -> Alcotest.fail "wrong error"
  | Ok _ -> Alcotest.fail "should block"

let test_executor_blocked_then_resume () =
  let env = make_env () in
  let (_ : Query.Executor.result_set) = run_exn env ~txn:2 q2 in
  (match Query.Executor.run_string env.executor ~txn:5 q2 with
   | Error (Query.Executor.Blocked { waiting = true; _ }) -> ()
   | Error _ | Ok _ -> Alcotest.fail "should queue");
  let (_ : Table.grant list) =
    Colock.Protocol.end_of_transaction
      (Query.Executor.protocol env.executor) ~txn:2
  in
  match Query.Executor.run_string env.executor ~txn:5 q2 with
  | Ok result -> check_int "row arrives" 1 (List.length result.Query.Executor.rows)
  | Error _ -> Alcotest.fail "retry should succeed"

let test_executor_scan_locks_relation () =
  (* An unrestricted scan of a populous relation escalates to the relation
     lock up front. *)
  let db =
    Workload.Generator.manufacturing
      { Workload.Generator.default_manufacturing with cells = 64 }
  in
  let graph = Colock.Instance_graph.build db in
  let table = Table.create () in
  let protocol = Colock.Protocol.create graph table in
  let executor = Query.Executor.create ~threshold:10 db protocol in
  match Query.Executor.run_string executor ~txn:1 "SELECT c FROM c IN cells FOR READ" with
  | Ok result ->
    check_int "64 rows" 64 (List.length result.Query.Executor.rows);
    check_int "one lock request" 1 result.Query.Executor.locks_requested;
    check_mode "relation S" Mode.S
      (Table.held table ~txn:1 ~resource:"db1/seg1/cells")
  | Error _ -> Alcotest.fail "scan failed"

let test_executor_empty_result () =
  let env = make_env () in
  let result =
    run_exn env ~txn:1
      "SELECT c FROM c IN cells WHERE c.cell_id = 'c99' FOR READ"
  in
  check_int "no rows" 0 (List.length result.Query.Executor.rows)

let test_executor_nested_refs_query () =
  let env = make_env () in
  let result =
    run_exn env ~txn:1
      "SELECT e FROM c IN cells, r IN c.robots, e IN r.effectors FOR READ"
  in
  (* 2 robots x 2 refs = 4 ref BLU members *)
  check_int "four ref rows" 4 (List.length result.Query.Executor.rows)

let test_executor_update_roundtrip () =
  let env = make_env () in
  let result = run_exn env ~txn:2 q2 in
  (match result.Query.Executor.rows with
   | [ row ] -> (
     let updated =
       match row.Query.Executor.value with
       | Value.Tuple bindings ->
         Value.Tuple
           (List.map
              (fun (field, sub) ->
                if String.equal field "trajectory" then
                  (field, Value.Str "tr1-updated")
                else (field, sub))
              bindings)
       | _ -> Alcotest.fail "robot should be a tuple"
     in
     match
       Query.Executor.apply_update env.executor ~txn:2 row (fun _old -> updated)
     with
     | Ok () -> ()
     | Error error ->
       Alcotest.failf "update failed: %s"
         (Format.asprintf "%a" Nf2.Database.pp_error error))
   | _ -> Alcotest.fail "one row expected");
  (* Read it back. *)
  let db = Query.Executor.database env.executor in
  let cell = Option.get (Nf2.Database.deref db (Oid.make ~relation:"cells" ~key:"c1")) in
  let trajectories = Value.project cell (Path.of_string "robots.trajectory") in
  check_bool "trajectory updated" true
    (List.exists (Value.equal (Value.Str "tr1-updated")) trajectories);
  check_bool "other robot untouched" true
    (List.exists (Value.equal (Value.Str "tr2")) trajectories)

let () =
  Alcotest.run "query"
    [ ("parser",
       [ Alcotest.test_case "q1" `Quick test_parse_q1;
         Alcotest.test_case "q2" `Quick test_parse_q2;
         Alcotest.test_case "case insensitive" `Quick
           test_parse_case_insensitive;
         Alcotest.test_case "no where" `Quick test_parse_no_where;
         Alcotest.test_case "literals" `Quick test_parse_literals;
         Alcotest.test_case "delete clause" `Quick test_parse_delete_clause;
         Alcotest.test_case "pp roundtrip" `Quick test_parse_roundtrip_pp;
         Alcotest.test_case "errors" `Quick test_parse_errors ]);
      ("analyzer",
       [ Alcotest.test_case "q2" `Quick test_analyze_q2;
         Alcotest.test_case "nested variable" `Quick
           test_analyze_nested_variable;
         Alcotest.test_case "unknown relation" `Quick
           test_analyze_unknown_relation;
         Alcotest.test_case "unknown variable" `Quick
           test_analyze_unknown_variable;
         Alcotest.test_case "not a collection" `Quick
           test_analyze_not_a_collection;
         Alcotest.test_case "unknown attribute" `Quick
           test_analyze_unknown_attribute;
         Alcotest.test_case "duplicate variable" `Quick
           test_analyze_duplicate_variable ]);
      ("executor",
       [ Alcotest.test_case "q1 rows and locks" `Quick test_executor_q1_rows;
         Alcotest.test_case "q2 locks match figure 7" `Quick
           test_executor_q2_locks_match_figure7;
         Alcotest.test_case "q1 || q2" `Quick test_executor_q1_q2_concurrent;
         Alcotest.test_case "q2 || q3" `Quick test_executor_q2_q3_concurrent;
         Alcotest.test_case "blocked" `Quick test_executor_blocked;
         Alcotest.test_case "blocked then resume" `Quick
           test_executor_blocked_then_resume;
         Alcotest.test_case "scan locks relation" `Quick
           test_executor_scan_locks_relation;
         Alcotest.test_case "empty result" `Quick test_executor_empty_result;
         Alcotest.test_case "nested refs query" `Quick
           test_executor_nested_refs_query;
         Alcotest.test_case "update roundtrip" `Quick
           test_executor_update_roundtrip ]) ]
