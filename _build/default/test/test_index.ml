(* Tests for secondary indexes: construction, maintenance under DML, and
   executor integration (index-assisted selection with identical results and
   locks). *)

module Path = Nf2.Path
module Oid = Nf2.Oid
module Value = Nf2.Value

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fig1 ?c_objects () = Workload.Figure1.database ?c_objects ()

let build_index db relation path =
  match
    Nf2.Database.create_index db ~relation (Path.of_string path)
  with
  | Ok () -> ()
  | Error error ->
    Alcotest.failf "create_index failed: %s"
      (Format.asprintf "%a" Nf2.Database.pp_error error)

let lookup db relation path probe =
  match
    Nf2.Database.index_lookup db ~relation ~path:(Path.of_string path) probe
  with
  | Some keys -> keys
  | None -> Alcotest.fail "index expected"

(* -------------------------------------------------------------- building *)

let test_index_on_key () =
  let db = fig1 () in
  build_index db "effectors" "eff_id";
  Alcotest.(check (list string)) "lookup e2" [ "e2" ]
    (lookup db "effectors" "eff_id" (Value.Str "e2"));
  Alcotest.(check (list string)) "lookup missing" []
    (lookup db "effectors" "eff_id" (Value.Str "e9"))

let test_index_on_non_key () =
  let db = fig1 () in
  build_index db "effectors" "tool";
  Alcotest.(check (list string)) "lookup by tool" [ "e2" ]
    (lookup db "effectors" "tool" (Value.Str "t2"))

let test_index_inside_collection () =
  (* robots.robot_id lives inside a list: the cell appears once per robot
     value, deduplicated per distinct value. *)
  let db = fig1 () in
  build_index db "cells" "robots.robot_id";
  Alcotest.(check (list string)) "cell via robot id" [ "c1" ]
    (lookup db "cells" "robots.robot_id" (Value.Str "r2"))

let test_index_rejects_non_atomic () =
  let db = fig1 () in
  match
    Nf2.Database.create_index db ~relation:"cells" (Path.of_string "robots")
  with
  | Error (Nf2.Database.Index_error _) -> ()
  | Error _ | Ok () -> Alcotest.fail "collection path must be rejected"

let test_index_unknown_relation () =
  let db = fig1 () in
  match
    Nf2.Database.create_index db ~relation:"nope" (Path.of_string "x")
  with
  | Error (Nf2.Database.Unknown_relation "nope") -> ()
  | Error _ | Ok () -> Alcotest.fail "unknown relation must be rejected"

let test_indexed_paths_listing () =
  let db = fig1 () in
  build_index db "effectors" "tool";
  build_index db "effectors" "eff_id";
  Alcotest.(check (list string)) "paths sorted" [ "eff_id"; "tool" ]
    (List.map Path.to_string (Nf2.Database.indexed_paths db ~relation:"effectors"));
  Nf2.Database.drop_index db ~relation:"effectors" (Path.of_string "tool");
  Alcotest.(check (list string)) "dropped" [ "eff_id" ]
    (List.map Path.to_string (Nf2.Database.indexed_paths db ~relation:"effectors"))

(* ----------------------------------------------------------- maintenance *)

let test_index_maintained_on_insert () =
  let db = fig1 () in
  build_index db "effectors" "tool";
  (match
     Nf2.Database.insert db "effectors"
       (Workload.Figure1.effector ~key:"e4" ~tool:"t2")
   with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "insert failed");
  Alcotest.(check (list string)) "both e2 and e4 under t2" [ "e2"; "e4" ]
    (lookup db "effectors" "tool" (Value.Str "t2"))

let test_index_maintained_on_replace () =
  let db = fig1 () in
  build_index db "effectors" "tool";
  (match
     Nf2.Database.replace db "effectors"
       (Workload.Figure1.effector ~key:"e2" ~tool:"t99")
   with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "replace failed");
  Alcotest.(check (list string)) "old entry gone" []
    (lookup db "effectors" "tool" (Value.Str "t2"));
  Alcotest.(check (list string)) "new entry present" [ "e2" ]
    (lookup db "effectors" "tool" (Value.Str "t99"))

let test_index_maintained_on_delete () =
  let db = fig1 () in
  build_index db "effectors" "tool";
  (match Nf2.Database.delete db (Oid.make ~relation:"effectors" ~key:"e2") with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "delete failed");
  Alcotest.(check (list string)) "entry removed" []
    (lookup db "effectors" "tool" (Value.Str "t2"))

(* -------------------------------------------------------------- executor *)

let executor_env ~with_index =
  let db =
    Workload.Generator.manufacturing
      { Workload.Generator.default_manufacturing with cells = 12 }
  in
  if with_index then build_index db "cells" "cell_id";
  let graph = Colock.Instance_graph.build db in
  let table = Lockmgr.Lock_table.create () in
  let protocol = Colock.Protocol.create graph table in
  (db, table, Query.Executor.create db protocol)

let q_c7 = "SELECT c FROM c IN cells WHERE c.cell_id = 'c7' FOR READ"

let test_executor_uses_index () =
  let _db, _table, executor = executor_env ~with_index:true in
  match Query.Executor.run_string executor ~txn:1 q_c7 with
  | Ok result ->
    check_bool "index used" true result.Query.Executor.used_index;
    check_int "one row" 1 (List.length result.Query.Executor.rows)
  | Error _ -> Alcotest.fail "query failed"

let test_executor_without_index_scans () =
  let _db, _table, executor = executor_env ~with_index:false in
  match Query.Executor.run_string executor ~txn:1 q_c7 with
  | Ok result ->
    check_bool "no index used" false result.Query.Executor.used_index;
    check_int "one row" 1 (List.length result.Query.Executor.rows)
  | Error _ -> Alcotest.fail "query failed"

let test_executor_index_equivalence () =
  (* identical rows and identical lock sets with and without the index *)
  let run with_index =
    let _db, table, executor = executor_env ~with_index in
    match Query.Executor.run_string executor ~txn:1 q_c7 with
    | Ok result ->
      ( List.map
          (fun row -> Colock.Node_id.to_resource row.Query.Executor.node)
          result.Query.Executor.rows,
        Lockmgr.Lock_table.locks_of table ~txn:1 )
    | Error _ -> Alcotest.fail "query failed"
  in
  let rows_with, locks_with = run true in
  let rows_without, locks_without = run false in
  check_bool "same rows" true (rows_with = rows_without);
  check_bool "same locks" true (locks_with = locks_without)

let test_executor_index_respects_other_conditions () =
  (* the index narrows candidates; remaining conditions still filter *)
  let db = fig1 () in
  build_index db "cells" "cell_id";
  let graph = Colock.Instance_graph.build db in
  let table = Lockmgr.Lock_table.create () in
  let protocol = Colock.Protocol.create graph table in
  let executor = Query.Executor.create db protocol in
  match
    Query.Executor.run_string executor ~txn:1
      "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND \
       r.robot_id = 'r9' FOR READ"
  with
  | Ok result ->
    check_bool "index used" true result.Query.Executor.used_index;
    check_int "no matching robot" 0 (List.length result.Query.Executor.rows)
  | Error _ -> Alcotest.fail "query failed"

let () =
  Alcotest.run "index"
    [ ("building",
       [ Alcotest.test_case "on key" `Quick test_index_on_key;
         Alcotest.test_case "on non-key" `Quick test_index_on_non_key;
         Alcotest.test_case "inside collection" `Quick
           test_index_inside_collection;
         Alcotest.test_case "rejects non-atomic" `Quick
           test_index_rejects_non_atomic;
         Alcotest.test_case "unknown relation" `Quick
           test_index_unknown_relation;
         Alcotest.test_case "listing and drop" `Quick
           test_indexed_paths_listing ]);
      ("maintenance",
       [ Alcotest.test_case "insert" `Quick test_index_maintained_on_insert;
         Alcotest.test_case "replace" `Quick test_index_maintained_on_replace;
         Alcotest.test_case "delete" `Quick test_index_maintained_on_delete ]);
      ("executor",
       [ Alcotest.test_case "uses index" `Quick test_executor_uses_index;
         Alcotest.test_case "scan without" `Quick
           test_executor_without_index_scans;
         Alcotest.test_case "equivalence" `Quick
           test_executor_index_equivalence;
         Alcotest.test_case "other conditions" `Quick
           test_executor_index_respects_other_conditions ]) ]
