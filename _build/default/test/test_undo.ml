(* Tests for transaction rollback: the undo log collects before-images from
   the executor's writes and an abort restores both the database and the
   instance graph. *)

module Path = Nf2.Path
module Oid = Nf2.Oid
module Value = Nf2.Value
module Mode = Lockmgr.Lock_mode
module Table = Lockmgr.Lock_table
module Graph = Colock.Instance_graph

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

type env = {
  db : Nf2.Database.t;
  graph : Graph.t;
  table : Table.t;
  protocol : Colock.Protocol.t;
  executor : Query.Executor.t;
  undo : Query.Undo.t;
}

let make_env () =
  let db = Workload.Figure1.database () in
  let graph = Graph.build db in
  let table = Table.create () in
  let protocol = Colock.Protocol.create graph table in
  let executor = Query.Executor.create db protocol in
  let undo = Query.Undo.create () in
  Query.Undo.attach undo executor;
  { db; graph; table; protocol; executor; undo }

let q2 =
  "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND \
   r.robot_id = 'r1' FOR UPDATE"

let c1_oid = Oid.make ~relation:"cells" ~key:"c1"

let new_cell key =
  Workload.Figure1.cell ~key
    ~objects:[ Workload.Figure1.cell_object ~id:1 ~name:"fresh" ]
    ~robots:
      [ Workload.Figure1.robot ~key:"r1" ~trajectory:"t" ~effectors:[ "e3" ] ]

let rollback_exn env ~txn =
  match Query.Undo.rollback env.undo ~txn env.executor with
  | Ok count -> count
  | Error error ->
    Alcotest.failf "rollback failed: %s"
      (Format.asprintf "%a" Query.Executor.pp_error error)

let update_trajectory env ~txn text =
  match Query.Executor.run_string env.executor ~txn q2 with
  | Ok { Query.Executor.rows = [ row ]; _ } -> (
    let updated =
      match row.Query.Executor.value with
      | Value.Tuple fields ->
        Value.Tuple
          (List.map
             (fun (name, sub) ->
               if String.equal name "trajectory" then (name, Value.Str text)
               else (name, sub))
             fields)
      | _ -> Alcotest.fail "robot is a tuple"
    in
    match Query.Executor.apply_update env.executor ~txn row (fun _ -> updated) with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "update failed")
  | Ok _ -> Alcotest.fail "one row expected"
  | Error _ -> Alcotest.fail "query failed"

let trajectory_of env =
  let cell = Option.get (Nf2.Database.deref env.db c1_oid) in
  match Value.project cell (Path.of_string "robots.trajectory") with
  | first :: _ -> first
  | [] -> Alcotest.fail "no trajectory"

let test_rollback_update () =
  let env = make_env () in
  update_trajectory env ~txn:1 "changed";
  check_bool "changed" true (Value.equal (trajectory_of env) (Value.Str "changed"));
  check_int "one record" 1 (Query.Undo.pending env.undo ~txn:1);
  check_int "one undone" 1 (rollback_exn env ~txn:1);
  check_bool "restored" true (Value.equal (trajectory_of env) (Value.Str "tr1"));
  check_int "log empty" 0 (Query.Undo.pending env.undo ~txn:1)

let test_rollback_lifo () =
  let env = make_env () in
  update_trajectory env ~txn:1 "v1";
  update_trajectory env ~txn:1 "v2";
  update_trajectory env ~txn:1 "v3";
  check_int "three records" 3 (Query.Undo.pending env.undo ~txn:1);
  check_int "three undone" 3 (rollback_exn env ~txn:1);
  check_bool "back to original, not an intermediate" true
    (Value.equal (trajectory_of env) (Value.Str "tr1"))

let test_rollback_insert () =
  let env = make_env () in
  (match Query.Executor.insert_object env.executor ~txn:1 "cells" (new_cell "c9") with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "insert failed");
  let c9 = Oid.make ~relation:"cells" ~key:"c9" in
  check_bool "inserted" true (Option.is_some (Nf2.Database.deref env.db c9));
  check_int "one undone" 1 (rollback_exn env ~txn:1);
  check_bool "gone from db" true (Nf2.Database.deref env.db c9 = None);
  check_bool "gone from graph" true (Graph.object_node env.graph c9 = None)

let test_rollback_delete () =
  let env = make_env () in
  (match Query.Executor.delete_object env.executor ~txn:1 c1_oid with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "delete failed");
  check_bool "deleted" true (Nf2.Database.deref env.db c1_oid = None);
  check_int "one undone" 1 (rollback_exn env ~txn:1);
  check_bool "back in db" true (Option.is_some (Nf2.Database.deref env.db c1_oid));
  (match Graph.object_node env.graph c1_oid with
   | Some _ -> ()
   | None -> Alcotest.fail "back in graph");
  (* references restored too: e1 referenced again *)
  check_int "referencers restored" 1
    (List.length
       (Graph.referencers env.graph (Oid.make ~relation:"effectors" ~key:"e1")))

let test_rollback_mixed_sequence () =
  let env = make_env () in
  update_trajectory env ~txn:1 "worked-on";
  (match Query.Executor.insert_object env.executor ~txn:1 "cells" (new_cell "c9") with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "insert failed");
  check_int "two records" 2 (Query.Undo.pending env.undo ~txn:1);
  check_int "both undone" 2 (rollback_exn env ~txn:1);
  check_bool "trajectory restored" true
    (Value.equal (trajectory_of env) (Value.Str "tr1"));
  check_bool "c9 gone" true
    (Nf2.Database.deref env.db (Oid.make ~relation:"cells" ~key:"c9") = None);
  check_int "ref integrity" 0
    (List.length (Nf2.Database.check_ref_integrity env.db))

let test_commit_forgets () =
  let env = make_env () in
  update_trajectory env ~txn:1 "committed";
  Query.Undo.forget env.undo ~txn:1;
  check_int "nothing to undo" 0 (rollback_exn env ~txn:1);
  check_bool "change survives" true
    (Value.equal (trajectory_of env) (Value.Str "committed"))

let test_per_transaction_isolation () =
  let env = make_env () in
  update_trajectory env ~txn:1 "by-t1";
  let (_ : Table.grant list) =
    Colock.Protocol.end_of_transaction env.protocol ~txn:1
  in
  Query.Undo.forget env.undo ~txn:1;
  (* T2 changes it again; only T2's change is rolled back *)
  update_trajectory env ~txn:2 "by-t2";
  check_int "undo T2" 1 (rollback_exn env ~txn:2);
  check_bool "T1's committed change is the restore point" true
    (Value.equal (trajectory_of env) (Value.Str "by-t1"))

let () =
  Alcotest.run "undo"
    [ ("rollback",
       [ Alcotest.test_case "update" `Quick test_rollback_update;
         Alcotest.test_case "lifo" `Quick test_rollback_lifo;
         Alcotest.test_case "insert" `Quick test_rollback_insert;
         Alcotest.test_case "delete" `Quick test_rollback_delete;
         Alcotest.test_case "mixed sequence" `Quick
           test_rollback_mixed_sequence;
         Alcotest.test_case "commit forgets" `Quick test_commit_forgets;
         Alcotest.test_case "per-transaction isolation" `Quick
           test_per_transaction_isolation ]) ]
