(* Tests for transitive behaviour on nested common data — "common data may
   again contain common data" (paper §2): products -> lib1 -> lib2 -> lib3.
   Downward propagation must cross superunit boundaries transitively; rule 4'
   weakening must be sticky below a non-modifiable level. *)

module Mode = Lockmgr.Lock_mode
module Table = Lockmgr.Lock_table
module Node_id = Colock.Node_id
module Graph = Colock.Instance_graph
module Protocol = Colock.Protocol
module Oid = Nf2.Oid

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

type env = {
  db : Nf2.Database.t;
  graph : Graph.t;
  table : Table.t;
  rights : Authz.Rights.t;
  protocol : Protocol.t;
}

let make_env ?(rule = Protocol.Rule_4) () =
  let db = Workload.Generator.nested Workload.Generator.default_nested in
  let graph = Graph.build db in
  let table = Table.create () in
  let rights = Authz.Rights.create () in
  let protocol = Protocol.create ~rule ~rights graph table in
  { db; graph; table; rights; protocol }

let object_node env ~relation ~key =
  Option.get (Graph.object_node env.graph (Oid.make ~relation ~key))

let plan_modes env ~txn node mode =
  List.map
    (fun { Protocol.node; mode; _ } -> (Node_id.to_resource node, mode))
    (Protocol.plan env.protocol ~txn node mode)

let planned_mode plan prefix =
  List.filter_map
    (fun (resource, mode) ->
      let length = String.length prefix in
      if String.length resource >= length && String.sub resource 0 length = prefix
      then Some mode
      else None)
    plan

(* ----------------------------------------------------------------- tests *)

let test_database_shape () =
  let env = make_env () in
  let catalog = Nf2.Database.catalog env.db in
  Alcotest.(check (list string))
    "shared relations" [ "lib1"; "lib2"; "lib3" ]
    (Nf2.Catalog.shared_relations catalog);
  check_int "no dangling refs" 0
    (List.length (Nf2.Database.check_ref_integrity env.db))

let test_entry_points_at_every_level () =
  let env = make_env () in
  List.iter
    (fun relation ->
      let node = object_node env ~relation ~key:(relation ^ "_1") in
      check_bool (relation ^ " objects are entry points") true
        (Colock.Units.is_entry_point env.graph node))
    [ "lib1"; "lib2"; "lib3" ];
  let product = object_node env ~relation:"products" ~key:"prod1" in
  check_bool "products are not entry points" false
    (Colock.Units.is_entry_point env.graph product)

let test_transitive_propagation_rule4 () =
  let env = make_env ~rule:Protocol.Rule_4 () in
  let product = object_node env ~relation:"products" ~key:"prod1" in
  let plan = plan_modes env ~txn:1 product Mode.X in
  (* the plan must place X on objects of every level reachable from prod1 *)
  let levels_covered =
    List.filter
      (fun level ->
        List.exists (Mode.equal Mode.X)
          (planned_mode plan (Printf.sprintf "db1/seg_lib%d/lib%d/lib%d_" level level level)))
      [ 1; 2; 3 ]
  in
  check_int "X propagated into all three library levels" 3
    (List.length levels_covered);
  (* each library relation chain is intention-locked (upward propagation) *)
  List.iter
    (fun level ->
      let relation_resource = Printf.sprintf "db1/seg_lib%d/lib%d" level level in
      check_bool
        (Printf.sprintf "lib%d relation intention-locked" level)
        true
        (List.exists
           (fun (resource, mode) ->
             String.equal resource relation_resource
             && Mode.leq Mode.IX mode)
           plan))
    [ 1; 2; 3 ]

let test_rule4_prime_weakening_is_sticky () =
  (* lib2 is read-only for T1: X propagation weakens to S at lib2 and the
     lib3 entries below get S as well — even though lib3 is modifiable. *)
  let env = make_env ~rule:Protocol.Rule_4_prime () in
  Authz.Rights.revoke_modify env.rights ~txn:1 ~relation:"lib2";
  let product = object_node env ~relation:"products" ~key:"prod1" in
  let plan = plan_modes env ~txn:1 product Mode.X in
  let lib1_modes = planned_mode plan "db1/seg_lib1/lib1/lib1_" in
  let lib2_modes = planned_mode plan "db1/seg_lib2/lib2/lib2_" in
  let lib3_modes = planned_mode plan "db1/seg_lib3/lib3/lib3_" in
  check_bool "lib1 entries X (modifiable)" true
    (lib1_modes <> [] && List.for_all (Mode.equal Mode.X) lib1_modes);
  check_bool "lib2 entries weakened to S" true
    (lib2_modes <> [] && List.for_all (Mode.equal Mode.S) lib2_modes);
  check_bool "lib3 entries stay S below a read-only level" true
    (lib3_modes <> [] && List.for_all (Mode.equal Mode.S) lib3_modes)

let test_mid_level_direct_access () =
  (* Direct X on a lib2 item: upward propagation inside its superunit,
     downward propagation into lib3. *)
  let env = make_env ~rule:Protocol.Rule_4 () in
  let item = object_node env ~relation:"lib2" ~key:"lib2_1" in
  match Protocol.try_acquire env.protocol ~txn:1 item Mode.X with
  | Protocol.Blocked _ -> Alcotest.fail "uncontended acquire"
  | Protocol.Acquired _ ->
    check_bool "lib2 relation IX" true
      (Mode.equal (Table.held env.table ~txn:1 ~resource:"db1/seg_lib2/lib2") Mode.IX);
    let lib3_locks =
      List.filter
        (fun (resource, _mode, _duration) ->
          String.length resource > 17
          && String.equal (String.sub resource 0 17) "db1/seg_lib3/lib3")
        (Table.locks_of env.table ~txn:1)
    in
    check_bool "lib3 entries locked via lib2" true
      (List.exists
         (fun (_resource, mode, _duration) -> Mode.equal mode Mode.X)
         lib3_locks)

let test_reader_blocks_deep_writer () =
  (* T1 reads a product (S propagates to its transitive components); T2 then
     tries to X a lib3 item that T1's closure covers: conflict detected. *)
  let env = make_env ~rule:Protocol.Rule_4 () in
  let product = object_node env ~relation:"products" ~key:"prod1" in
  (match Protocol.try_acquire env.protocol ~txn:1 product Mode.S with
   | Protocol.Acquired _ -> ()
   | Protocol.Blocked _ -> Alcotest.fail "reader should acquire");
  (* find a lib3 entry T1 covers *)
  let covered_lib3 =
    List.filter_map
      (fun (resource, mode, _duration) ->
        if
          Mode.equal mode Mode.S
          && String.length resource > 18
          && String.equal (String.sub resource 0 17) "db1/seg_lib3/lib3"
        then Some resource
        else None)
      (Table.locks_of env.table ~txn:1)
  in
  match covered_lib3 with
  | [] -> Alcotest.fail "expected S locks on lib3 entries"
  | resource :: _ -> (
    let steps = String.split_on_char '/' resource in
    let node = Option.get (Node_id.of_steps steps) in
    match Protocol.try_acquire env.protocol ~txn:2 node Mode.X with
    | Protocol.Blocked { blockers; _ } ->
      Alcotest.(check (list int)) "blocked by the reader" [ 1 ] blockers
    | Protocol.Acquired _ ->
      Alcotest.fail "deep component write must see the reader")

let test_no_hidden_conflicts_on_nested () =
  (* Two product updaters whose part closures overlap somewhere below. *)
  let env = make_env ~rule:Protocol.Rule_4 () in
  let outcomes =
    List.map
      (fun (txn, key) ->
        let product = object_node env ~relation:"products" ~key in
        match Protocol.try_acquire env.protocol ~txn product Mode.X with
        | Protocol.Acquired _ -> Some txn
        | Protocol.Blocked _ ->
          let (_ : Table.grant list) = Table.release_all env.table ~txn in
          None)
      [ (1, "prod1"); (2, "prod2"); (3, "prod3") ]
  in
  let winners = List.filter_map Fun.id outcomes in
  let conflicts =
    Baselines.Sysr_dag.hidden_conflicts ~rights:env.rights env.graph env.table
      ~txns:winners
  in
  check_int "no hidden conflicts among winners" 0 (List.length conflicts)

let test_nested_checkout_closure () =
  (* Whole-object check-out of a product under the whole-object baseline
     must follow the reference closure through all levels. *)
  let env = make_env () in
  let prod1 = Oid.make ~relation:"products" ~key:"prod1" in
  let plan = Baselines.Whole_object.plan env.graph ~oid:prod1 Mode.S in
  let touches prefix =
    List.exists
      (fun { Baselines.Technique.node; _ } ->
        let resource = Node_id.to_resource node in
        String.length resource >= String.length prefix
        && String.equal (String.sub resource 0 (String.length prefix)) prefix)
      plan
  in
  check_bool "closure reaches lib1" true (touches "db1/seg_lib1/lib1/");
  check_bool "closure reaches lib3" true (touches "db1/seg_lib3/lib3/")

let () =
  Alcotest.run "nested"
    [ ("nested_common_data",
       [ Alcotest.test_case "database shape" `Quick test_database_shape;
         Alcotest.test_case "entry points at every level" `Quick
           test_entry_points_at_every_level;
         Alcotest.test_case "transitive propagation (rule 4)" `Quick
           test_transitive_propagation_rule4;
         Alcotest.test_case "rule 4' weakening is sticky" `Quick
           test_rule4_prime_weakening_is_sticky;
         Alcotest.test_case "mid-level direct access" `Quick
           test_mid_level_direct_access;
         Alcotest.test_case "reader blocks deep writer" `Quick
           test_reader_blocks_deep_writer;
         Alcotest.test_case "no hidden conflicts" `Quick
           test_no_hidden_conflicts_on_nested;
         Alcotest.test_case "whole-object closure" `Quick
           test_nested_checkout_closure ]) ]
