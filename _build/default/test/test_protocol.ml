(* Tests for the §4.4.2 lock protocol: rules 1-5, rule 4', the two implicit
   propagations, and the exact lock sets of the paper's Figure 7. *)

module Path = Nf2.Path
module Oid = Nf2.Oid
module Mode = Lockmgr.Lock_mode
module Table = Lockmgr.Lock_table
module Node_id = Colock.Node_id
module Graph = Colock.Instance_graph
module Protocol = Colock.Protocol

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let node steps = Option.get (Node_id.of_steps steps)

type env = {
  graph : Graph.t;
  table : Table.t;
  rights : Authz.Rights.t;
  protocol : Protocol.t;
}

let make_env ?(rule = Protocol.Rule_4_prime) ?(c_objects = 3) () =
  let db = Workload.Figure1.database ~c_objects () in
  let graph = Graph.build db in
  let table = Table.create () in
  let rights = Authz.Rights.create () in
  let protocol = Protocol.create ~rule ~rights graph table in
  { graph; table; rights; protocol }

let acquire_exn env ~txn id mode =
  match Protocol.acquire env.protocol ~txn id mode with
  | Protocol.Acquired steps -> steps
  | Protocol.Blocked { step; blockers; _ } ->
    Alcotest.failf "unexpected block on %s (blockers %s)"
      (Node_id.to_resource step.Protocol.node)
      (String.concat "," (List.map string_of_int blockers))

let held env ~txn steps =
  Table.held env.table ~txn ~resource:(Node_id.to_resource (node steps))

let mode_testable = Alcotest.testable Mode.pp Mode.equal
let check_mode label expected actual = Alcotest.check mode_testable label expected actual

(* Named instance nodes of the Figure 6/7 database. *)
let db1 = [ "db1" ]
let seg1 = [ "db1"; "seg1" ]
let seg2 = [ "db1"; "seg2" ]
let rel_cells = [ "db1"; "seg1"; "cells" ]
let rel_effectors = [ "db1"; "seg2"; "effectors" ]
let cell_c1 = [ "db1"; "seg1"; "cells"; "c1" ]
let robots = [ "db1"; "seg1"; "cells"; "c1"; "robots" ]
let robot_r1 = [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r1" ]
let robot_r2 = [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r2" ]
let c_objects = [ "db1"; "seg1"; "cells"; "c1"; "c_objects" ]
let effector_e1 = [ "db1"; "seg2"; "effectors"; "e1" ]
let effector_e2 = [ "db1"; "seg2"; "effectors"; "e2" ]
let effector_e3 = [ "db1"; "seg2"; "effectors"; "e3" ]

(* ------------------------------------------------------------------ Plans *)

let test_plan_simple_read () =
  let env = make_env () in
  let steps = Protocol.plan env.protocol ~txn:1 (node c_objects) Mode.S in
  Alcotest.(check (list (pair string string)))
    "IS chain then S"
    [ ("db1", "IS"); ("db1/seg1", "IS"); ("db1/seg1/cells", "IS");
      ("db1/seg1/cells/c1", "IS"); ("db1/seg1/cells/c1/c_objects", "S") ]
    (List.map
       (fun { Protocol.node; mode; _ } ->
         (Node_id.to_resource node, Mode.to_string mode))
       steps)

let test_plan_is_deterministic () =
  let env = make_env () in
  let plan () =
    List.map
      (fun { Protocol.node; mode; _ } ->
        (Node_id.to_resource node, Mode.to_string mode))
      (Protocol.plan env.protocol ~txn:1 (node robot_r1) Mode.X)
  in
  check_bool "same plan twice" true (plan () = plan ())

let test_plan_parents_before_children () =
  let env = make_env () in
  List.iter
    (fun (target, mode) ->
      let steps = Protocol.plan env.protocol ~txn:1 (node target) mode in
      let seen = Hashtbl.create 16 in
      List.iter
        (fun { Protocol.node = step_node; _ } ->
          (match Node_id.parent step_node with
           | Some parent ->
             check_bool
               (Printf.sprintf "parent of %s first" (Node_id.to_resource step_node))
               true
               (Hashtbl.mem seen (Node_id.to_resource parent))
           | None -> ());
          Hashtbl.replace seen (Node_id.to_resource step_node) ())
        steps)
    [ (robot_r1, Mode.X); (cell_c1, Mode.S); (effector_e2, Mode.X);
      (rel_cells, Mode.SIX) ]

(* ---------------------------------------------------------------- Figure 7 *)

(* Q2: X on robot r1, no right to modify the effectors library. *)
let run_q2 env ~txn =
  Authz.Rights.revoke_modify env.rights ~txn ~relation:"effectors";
  acquire_exn env ~txn (node robot_r1) Mode.X

(* Q3: X on robot r2, same restriction. *)
let run_q3 env ~txn =
  Authz.Rights.revoke_modify env.rights ~txn ~relation:"effectors";
  acquire_exn env ~txn (node robot_r2) Mode.X

let test_figure7_q2_locks () =
  let env = make_env () in
  let (_ : Protocol.step list) = run_q2 env ~txn:2 in
  (* Exactly the locks of Fig. 7, left column. *)
  check_mode "db1 IX" Mode.IX (held env ~txn:2 db1);
  check_mode "seg1 IX" Mode.IX (held env ~txn:2 seg1);
  check_mode "cells IX" Mode.IX (held env ~txn:2 rel_cells);
  check_mode "c1 IX" Mode.IX (held env ~txn:2 cell_c1);
  check_mode "robots IX" Mode.IX (held env ~txn:2 robots);
  check_mode "r1 X" Mode.X (held env ~txn:2 robot_r1);
  check_mode "seg2 IS" Mode.IS (held env ~txn:2 seg2);
  check_mode "relation effectors IS" Mode.IS (held env ~txn:2 rel_effectors);
  check_mode "e1 S" Mode.S (held env ~txn:2 effector_e1);
  check_mode "e2 S" Mode.S (held env ~txn:2 effector_e2);
  (* ... and nothing else: *)
  check_mode "e3 untouched" Mode.NL (held env ~txn:2 effector_e3);
  check_mode "c_objects untouched" Mode.NL (held env ~txn:2 c_objects);
  check_mode "r2 untouched" Mode.NL (held env ~txn:2 robot_r2);
  check_int "exactly 10 locks" 10
    (List.length (Table.locks_of env.table ~txn:2))

let test_figure7_q3_locks () =
  let env = make_env () in
  let (_ : Protocol.step list) = run_q3 env ~txn:3 in
  check_mode "db1 IX" Mode.IX (held env ~txn:3 db1);
  check_mode "seg1 IX" Mode.IX (held env ~txn:3 seg1);
  check_mode "cells IX" Mode.IX (held env ~txn:3 rel_cells);
  check_mode "c1 IX" Mode.IX (held env ~txn:3 cell_c1);
  check_mode "robots IX" Mode.IX (held env ~txn:3 robots);
  check_mode "r2 X" Mode.X (held env ~txn:3 robot_r2);
  check_mode "seg2 IS" Mode.IS (held env ~txn:3 seg2);
  check_mode "relation effectors IS" Mode.IS (held env ~txn:3 rel_effectors);
  check_mode "e2 S" Mode.S (held env ~txn:3 effector_e2);
  check_mode "e3 S" Mode.S (held env ~txn:3 effector_e3);
  check_mode "e1 untouched" Mode.NL (held env ~txn:3 effector_e1);
  check_int "exactly 10 locks" 10
    (List.length (Table.locks_of env.table ~txn:3))

let test_figure7_q2_q3_concurrent () =
  (* The paper's headline: under rule 4', Q2 and Q3 run concurrently although
     both touch effector e2. *)
  let env = make_env () in
  let (_ : Protocol.step list) = run_q2 env ~txn:2 in
  Authz.Rights.revoke_modify env.rights ~txn:3 ~relation:"effectors";
  match Protocol.try_acquire env.protocol ~txn:3 (node robot_r2) Mode.X with
  | Protocol.Acquired _ ->
    check_mode "both hold S on e2 (T2)" Mode.S (held env ~txn:2 effector_e2);
    check_mode "both hold S on e2 (T3)" Mode.S (held env ~txn:3 effector_e2)
  | Protocol.Blocked { step; _ } ->
    Alcotest.failf "Q3 blocked on %s under rule 4'"
      (Node_id.to_resource step.Protocol.node)

let test_figure7_rule4_serializes () =
  (* Under plain rule 4 the same two queries conflict on e2 (X vs X). *)
  let env = make_env ~rule:Protocol.Rule_4 () in
  let (_ : Protocol.step list) =
    acquire_exn env ~txn:2 (node robot_r1) Mode.X
  in
  check_mode "rule 4 propagates X" Mode.X (held env ~txn:2 effector_e2);
  match Protocol.try_acquire env.protocol ~txn:3 (node robot_r2) Mode.X with
  | Protocol.Blocked { step; blockers; _ } ->
    Alcotest.(check (list int)) "blocked by T2" [ 2 ] blockers;
    check_bool "blocked on e2" true
      (String.equal
         (Node_id.to_resource step.Protocol.node)
         "db1/seg2/effectors/e2")
  | Protocol.Acquired _ -> Alcotest.fail "rule 4 must serialize Q2/Q3"

(* ------------------------------------------------- Granule-oriented (Q1/Q2) *)

let test_q1_q2_concurrent () =
  (* §3.2.1: Q1 reads c_objects of c1, Q2 updates robot r1; with sub-object
     granules they do not conflict. *)
  let env = make_env () in
  let (_ : Protocol.step list) =
    acquire_exn env ~txn:1 (node c_objects) Mode.S
  in
  let (_ : Protocol.step list) = run_q2 env ~txn:2 in
  check_mode "Q1 holds S c_objects" Mode.S (held env ~txn:1 c_objects);
  check_mode "Q2 holds X r1" Mode.X (held env ~txn:2 robot_r1)

let test_whole_object_locking_would_conflict () =
  (* The same two queries on whole-object granules do conflict. *)
  let env = make_env () in
  let (_ : Protocol.step list) = acquire_exn env ~txn:1 (node cell_c1) Mode.S in
  match Protocol.try_acquire env.protocol ~txn:2 (node cell_c1) Mode.X with
  | Protocol.Blocked _ -> ()
  | Protocol.Acquired _ -> Alcotest.fail "whole-object X vs S must conflict"

(* -------------------------------------------------------- From-the-side *)

let test_from_the_side_conflict_detected () =
  (* §3.2.2: T2 X-locks robot r1 (covering e1/e2 via downward propagation as
     modifiable data under rule 4); T3 then reads e2 "from the side" through
     robot r2 and must see the conflict. *)
  let env = make_env ~rule:Protocol.Rule_4 () in
  let (_ : Protocol.step list) =
    acquire_exn env ~txn:2 (node robot_r1) Mode.X
  in
  match Protocol.try_acquire env.protocol ~txn:3 (node robot_r2) Mode.S with
  | Protocol.Blocked { step; blockers; _ } ->
    Alcotest.(check (list int)) "blocked by T2" [ 2 ] blockers;
    check_bool "conflict surfaces on e2" true
      (String.equal
         (Node_id.to_resource step.Protocol.node)
         "db1/seg2/effectors/e2")
  | Protocol.Acquired _ ->
    Alcotest.fail "from-the-side access must be synchronized"

let test_direct_library_update_sees_readers () =
  (* A library-maintenance transaction X-locking e2 directly must conflict
     with a reader that holds e2 S via downward propagation. *)
  let env = make_env () in
  let (_ : Protocol.step list) =
    acquire_exn env ~txn:1 (node robot_r2) Mode.S
  in
  check_mode "reader holds e2 S" Mode.S (held env ~txn:1 effector_e2);
  match Protocol.try_acquire env.protocol ~txn:2 (node effector_e2) Mode.X with
  | Protocol.Blocked { blockers; _ } ->
    Alcotest.(check (list int)) "blocked by reader" [ 1 ] blockers
  | Protocol.Acquired _ -> Alcotest.fail "library update must wait for readers"

(* ------------------------------------------------------- Explicit protocol *)

let test_explicit_requires_parent () =
  let env = make_env () in
  match
    Protocol.request_explicit env.protocol ~txn:1 (node cell_c1) Mode.S
  with
  | Error (Protocol.Parent_not_locked { needed; _ }) ->
    check_mode "needs IS" Mode.IS needed
  | Error _ -> Alcotest.fail "wrong violation"
  | Ok _ -> Alcotest.fail "rule 1 must reject an unlocked parent chain"

let test_explicit_root_needs_nothing () =
  let env = make_env () in
  match Protocol.request_explicit env.protocol ~txn:1 (node db1) Mode.IX with
  | Ok (Protocol.Acquired _) -> ()
  | Ok (Protocol.Blocked _) | Error _ ->
    Alcotest.fail "root of the outer unit needs no prior locks"

let test_explicit_step_by_step () =
  (* Locking root-to-leaf by hand satisfies the explicit protocol. *)
  let env = make_env () in
  let request steps mode =
    match Protocol.request_explicit env.protocol ~txn:1 (node steps) mode with
    | Ok (Protocol.Acquired _) -> ()
    | Ok (Protocol.Blocked _) -> Alcotest.fail "unexpected block"
    | Error violation ->
      Alcotest.failf "violation: %s"
        (Format.asprintf "%a" Protocol.pp_protocol_violation violation)
  in
  request db1 Mode.IX;
  request seg1 Mode.IX;
  request rel_cells Mode.IX;
  request cell_c1 Mode.IX;
  request robots Mode.IX;
  request robot_r1 Mode.X;
  check_mode "r1 X" Mode.X (held env ~txn:1 robot_r1)

let test_explicit_entry_point_via_reference () =
  (* An entry point may be requested once the referencing node is
     intention-locked; the manager performs the upward propagation. *)
  let env = make_env () in
  let (_ : Protocol.step list) =
    acquire_exn env ~txn:1 (node robot_r1) Mode.S
  in
  (* r1 S-locked: its BLU refs are implicitly covered, so e1 is reachable. *)
  (match
     Protocol.request_explicit env.protocol ~txn:1 (node effector_e1) Mode.S
   with
   | Ok (Protocol.Acquired _) -> ()
   | Ok (Protocol.Blocked _) | Error _ ->
     Alcotest.fail "entry point should be grantable via reference");
  check_mode "upward propagation locked seg2" Mode.IS (held env ~txn:1 seg2);
  check_mode "upward propagation locked relation" Mode.IS
    (held env ~txn:1 rel_effectors)

let test_explicit_entry_point_unreachable () =
  let env = make_env () in
  match
    Protocol.request_explicit env.protocol ~txn:1 (node effector_e1) Mode.S
  with
  | Error (Protocol.Entry_point_not_reached _) -> ()
  | Error _ -> Alcotest.fail "wrong violation"
  | Ok _ -> Alcotest.fail "unreached entry point must be rejected"

let test_explicit_unknown_node () =
  let env = make_env () in
  match
    Protocol.request_explicit env.protocol ~txn:1
      (node [ "db1"; "nowhere" ]) Mode.S
  with
  | Error (Protocol.Unknown_node _) -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected Unknown_node"

(* --------------------------------------------------------- Effective mode *)

let test_effective_mode_implicit () =
  let env = make_env () in
  let (_ : Protocol.step list) = acquire_exn env ~txn:1 (node cell_c1) Mode.X in
  check_mode "descendant implicitly X" Mode.X
    (Protocol.effective_mode env.protocol ~txn:1 (node robot_r1));
  check_mode "deep descendant implicitly X" Mode.X
    (Protocol.effective_mode env.protocol ~txn:1
       (node (robot_r1 @ [ "trajectory" ])));
  (* X on c1 reaches the effectors through downward propagation (all
     modifiable by default), so e1 is explicitly X, not implicitly covered. *)
  check_mode "e1 explicitly X via propagation" Mode.X (held env ~txn:1 effector_e1);
  check_mode "no explicit lock below c1 itself" Mode.NL
    (held env ~txn:1 (c_objects @ [ "1" ]))

let test_effective_mode_s_over_six () =
  let env = make_env () in
  let (_ : Protocol.step list) = acquire_exn env ~txn:1 (node cell_c1) Mode.S in
  let (_ : Protocol.step list) =
    acquire_exn env ~txn:1 (node cell_c1) Mode.IX
  in
  check_mode "cell holds SIX" Mode.SIX (held env ~txn:1 cell_c1);
  check_mode "descendants implicitly S" Mode.S
    (Protocol.effective_mode env.protocol ~txn:1 (node robot_r1))

let test_effective_mode_no_dashed_inheritance () =
  (* Implicit locks do not flow across dashed edges: X on robot r1 does not
     implicitly cover effector e1's BLUs; the *explicit* downward-propagation
     lock on e1 does. *)
  let env = make_env ~rule:Protocol.Rule_4 () in
  let (_ : Protocol.step list) =
    acquire_exn env ~txn:1 (node robot_r1) Mode.X
  in
  check_mode "e1 explicitly X (propagated)" Mode.X (held env ~txn:1 effector_e1);
  check_mode "e1's tool implicitly X via e1" Mode.X
    (Protocol.effective_mode env.protocol ~txn:1
       (node (effector_e1 @ [ "tool" ])))

(* ------------------------------------------------------- Rule 5 / release *)

let test_release_leaf_to_root () =
  let env = make_env () in
  let (_ : Protocol.step list) =
    acquire_exn env ~txn:1 (node c_objects) Mode.S
  in
  let (_ : Table.grant list) =
    Protocol.release_node env.protocol ~txn:1 (node c_objects)
  in
  check_mode "leaf released" Mode.NL (held env ~txn:1 c_objects);
  check_mode "parents still intention-locked" Mode.IS (held env ~txn:1 cell_c1);
  let (_ : Table.grant list) = Protocol.end_of_transaction env.protocol ~txn:1 in
  check_int "all gone" 0 (List.length (Table.locks_of env.table ~txn:1))

let test_end_of_transaction_wakes_waiters () =
  let env = make_env () in
  let (_ : Protocol.step list) = acquire_exn env ~txn:1 (node cell_c1) Mode.X in
  (match Protocol.acquire env.protocol ~txn:2 (node cell_c1) Mode.S with
   | Protocol.Blocked _ -> ()
   | Protocol.Acquired _ -> Alcotest.fail "should block");
  let grants = Protocol.end_of_transaction env.protocol ~txn:1 in
  check_bool "T2 woken" true
    (List.exists (fun grant -> grant.Table.g_txn = 2) grants)

(* -------------------------------------------- Disjoint degenerates to R *)

let test_disjoint_plan_matches_system_r () =
  (* On a reference-free database the plan is exactly the System R DAG
     protocol: intentions on database/segment/relation, lock on the object. *)
  let db =
    Workload.Generator.deep
      { Workload.Generator.default_deep with share = false; parts = 0;
        depth = 1; objects = 2 }
  in
  let graph = Graph.build db in
  let table = Table.create () in
  let protocol = Protocol.create graph table in
  let a1 = Option.get (Graph.object_node graph (Oid.make ~relation:"assemblies" ~key:"a1")) in
  let steps = Protocol.plan protocol ~txn:1 a1 Mode.X in
  Alcotest.(check (list (pair string string)))
    "System R shape"
    [ ("db1", "IX"); ("db1/seg_asm", "IX"); ("db1/seg_asm/assemblies", "IX");
      ("db1/seg_asm/assemblies/a1", "X") ]
    (List.map
       (fun { Protocol.node; mode; _ } ->
         (Node_id.to_resource node, Mode.to_string mode))
       steps)

(* -------------------------------------------------- Semantics refinement *)

let test_reference_blind_delete_skips_propagation () =
  (* §4.5: deleting a robot without touching its effectors takes no locks on
     common data at all. *)
  let env = make_env () in
  let steps =
    Protocol.plan env.protocol ~txn:1 ~follow_references:false (node robot_r1)
      Mode.X
  in
  check_int "just the chain + X" 6 (List.length steps);
  check_bool "no effector locks planned" true
    (List.for_all
       (fun { Protocol.node = step_node; _ } ->
         not
           (Node_id.is_ancestor ~ancestor:(node seg2) step_node))
       steps)

let test_reference_blind_delete_ignores_library_writer () =
  (* A librarian holding e1 X does not block the reference-blind delete. *)
  let env = make_env () in
  let (_ : Protocol.step list) =
    acquire_exn env ~txn:9 (node effector_e1) Mode.X
  in
  match
    Protocol.try_acquire env.protocol ~txn:1 ~follow_references:false
      (node robot_r1) Mode.X
  with
  | Protocol.Acquired _ -> ()
  | Protocol.Blocked _ ->
    Alcotest.fail "reference-blind access must not touch the library"

let test_acquire_idempotent () =
  let env = make_env () in
  let (_ : Protocol.step list) = run_q2 env ~txn:2 in
  let before = Table.locks_of env.table ~txn:2 in
  let (_ : Protocol.step list) = run_q2 env ~txn:2 in
  check_bool "same lock set after re-acquire" true
    (before = Table.locks_of env.table ~txn:2);
  check_int "still 10 locks" 10 (List.length before)

(* ------------------------------------------------ Blocking and resumption *)

let test_blocked_acquire_resumes () =
  let env = make_env () in
  let (_ : Protocol.step list) = acquire_exn env ~txn:1 (node robot_r1) Mode.X in
  (* T2 wants the whole cell: blocked on r1's ancestor... actually on c1?  No:
     T2's S on c1 conflicts with T1's IX on c1.  It queues there. *)
  (match Protocol.acquire env.protocol ~txn:2 (node cell_c1) Mode.S with
   | Protocol.Blocked { step; _ } ->
     check_bool "blocked on c1" true
       (String.equal (Node_id.to_resource step.Protocol.node)
          "db1/seg1/cells/c1")
   | Protocol.Acquired _ -> Alcotest.fail "should block");
  let (_ : Table.grant list) = Protocol.end_of_transaction env.protocol ~txn:1 in
  (* After T1 is gone the queued grant already installed T2's lock; re-calling
     acquire completes the remaining plan steps. *)
  match Protocol.acquire env.protocol ~txn:2 (node cell_c1) Mode.S with
  | Protocol.Acquired _ ->
    check_mode "T2 holds c1 S" Mode.S (held env ~txn:2 cell_c1)
  | Protocol.Blocked _ -> Alcotest.fail "retry should succeed"

(* --------------------------------------------- Oracle: no hidden conflicts *)

let all_data_nodes env =
  Graph.fold (fun node accu -> node.Graph.id :: accu) env.graph []

let assert_no_effective_conflict env ~txns =
  List.iter
    (fun id ->
      let effective =
        List.map (fun txn -> (txn, Protocol.effective_mode env.protocol ~txn id)) txns
      in
      List.iter
        (fun (txn_a, mode_a) ->
          List.iter
            (fun (txn_b, mode_b) ->
              if txn_a < txn_b then
                let data_conflict =
                  (Mode.grants_write mode_a && Mode.grants_read mode_b)
                  || (Mode.grants_read mode_a && Mode.grants_write mode_b)
                in
                if data_conflict then
                  Alcotest.failf "hidden conflict at %s: T%d=%s T%d=%s"
                    (Node_id.to_resource id) txn_a (Mode.to_string mode_a)
                    txn_b (Mode.to_string mode_b))
            effective)
        effective)
    (all_data_nodes env)

let test_oracle_on_figure7 () =
  let env = make_env () in
  let (_ : Protocol.step list) = run_q2 env ~txn:2 in
  let (_ : Protocol.step list) = run_q3 env ~txn:3 in
  assert_no_effective_conflict env ~txns:[ 2; 3 ]

let prop_random_acquires_never_hide_conflicts =
  (* Random transactions acquire random granted locks; at every point, no two
     transactions may hold effectively conflicting data locks anywhere. *)
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 12)
        (triple (int_range 1 4) (int_range 0 1000) (oneofl [ Mode.S; Mode.X; Mode.IS; Mode.IX ])))
  in
  let arbitrary =
    QCheck.make
      ~print:(fun ops ->
        String.concat ";"
          (List.map
             (fun (txn, pick, mode) ->
               Printf.sprintf "T%d:%d:%s" txn pick (Mode.to_string mode))
             ops))
      gen
  in
  QCheck.Test.make ~name:"random acquires never hide conflicts" ~count:60
    arbitrary
    (fun operations ->
      let env = make_env () in
      let nodes = Array.of_list (all_data_nodes env) in
      Array.sort Node_id.compare nodes;
      List.iter
        (fun (txn, pick, mode) ->
          let id = nodes.(pick mod Array.length nodes) in
          match Protocol.try_acquire env.protocol ~txn id mode with
          | Protocol.Acquired _ -> ()
          | Protocol.Blocked { acquired = _; _ } ->
            (* keep the prefix; that is legal 2PL behaviour *)
            ())
        operations;
      assert_no_effective_conflict env ~txns:[ 1; 2; 3; 4 ];
      true)

let () =
  Alcotest.run "protocol"
    [ ("plans",
       [ Alcotest.test_case "simple read" `Quick test_plan_simple_read;
         Alcotest.test_case "deterministic" `Quick test_plan_is_deterministic;
         Alcotest.test_case "parents before children" `Quick
           test_plan_parents_before_children ]);
      ("figure7",
       [ Alcotest.test_case "Q2 lock set" `Quick test_figure7_q2_locks;
         Alcotest.test_case "Q3 lock set" `Quick test_figure7_q3_locks;
         Alcotest.test_case "Q2 || Q3 under rule 4'" `Quick
           test_figure7_q2_q3_concurrent;
         Alcotest.test_case "rule 4 serializes" `Quick
           test_figure7_rule4_serializes ]);
      ("granule_problem",
       [ Alcotest.test_case "Q1 || Q2 with sub-object granules" `Quick
           test_q1_q2_concurrent;
         Alcotest.test_case "whole-object locking conflicts" `Quick
           test_whole_object_locking_would_conflict ]);
      ("from_the_side",
       [ Alcotest.test_case "conflict detected" `Quick
           test_from_the_side_conflict_detected;
         Alcotest.test_case "direct library update sees readers" `Quick
           test_direct_library_update_sees_readers ]);
      ("explicit_protocol",
       [ Alcotest.test_case "requires parent" `Quick
           test_explicit_requires_parent;
         Alcotest.test_case "root needs nothing" `Quick
           test_explicit_root_needs_nothing;
         Alcotest.test_case "step by step" `Quick test_explicit_step_by_step;
         Alcotest.test_case "entry point via reference" `Quick
           test_explicit_entry_point_via_reference;
         Alcotest.test_case "entry point unreachable" `Quick
           test_explicit_entry_point_unreachable;
         Alcotest.test_case "unknown node" `Quick test_explicit_unknown_node ]);
      ("effective_mode",
       [ Alcotest.test_case "implicit X" `Quick test_effective_mode_implicit;
         Alcotest.test_case "SIX implies S below" `Quick
           test_effective_mode_s_over_six;
         Alcotest.test_case "no dashed inheritance" `Quick
           test_effective_mode_no_dashed_inheritance ]);
      ("release",
       [ Alcotest.test_case "leaf to root" `Quick test_release_leaf_to_root;
         Alcotest.test_case "EOT wakes waiters" `Quick
           test_end_of_transaction_wakes_waiters ]);
      ("disjoint",
       [ Alcotest.test_case "plan matches System R" `Quick
           test_disjoint_plan_matches_system_r ]);
      ("semantics",
       [ Alcotest.test_case "reference-blind delete plan" `Quick
           test_reference_blind_delete_skips_propagation;
         Alcotest.test_case "ignores library writer" `Quick
           test_reference_blind_delete_ignores_library_writer;
         Alcotest.test_case "acquire idempotent" `Quick
           test_acquire_idempotent ]);
      ("blocking",
       [ Alcotest.test_case "blocked acquire resumes" `Quick
           test_blocked_acquire_resumes ]);
      ("oracle",
       [ Alcotest.test_case "figure 7 oracle" `Quick test_oracle_on_figure7;
         QCheck_alcotest.to_alcotest prop_random_acquires_never_hide_conflicts
       ]) ]
