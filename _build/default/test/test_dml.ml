(* Tests for insert/delete through the protocol, incremental instance-graph
   maintenance, and relation-granularity phantom protection. *)

module Path = Nf2.Path
module Oid = Nf2.Oid
module Value = Nf2.Value
module Mode = Lockmgr.Lock_mode
module Table = Lockmgr.Lock_table
module Node_id = Colock.Node_id
module Graph = Colock.Instance_graph

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

type env = {
  db : Nf2.Database.t;
  graph : Graph.t;
  table : Table.t;
  executor : Query.Executor.t;
  protocol : Colock.Protocol.t;
}

let make_env () =
  let db = Workload.Figure1.database () in
  let graph = Graph.build db in
  let table = Table.create () in
  let protocol = Colock.Protocol.create graph table in
  { db; graph; table; executor = Query.Executor.create db protocol; protocol }

let new_cell key =
  Workload.Figure1.cell ~key
    ~objects:[ Workload.Figure1.cell_object ~id:1 ~name:"new" ]
    ~robots:
      [ Workload.Figure1.robot ~key:"r1" ~trajectory:"t" ~effectors:[ "e1" ] ]

(* ------------------------------------------------------------- Graph level *)

let test_graph_insert_object () =
  let env = make_env () in
  let before = Graph.node_count env.graph in
  let catalog = Nf2.Database.catalog env.db in
  (match
     Graph.insert_object env.graph catalog Workload.Figure1.cells_schema
       ~key:"c2" (new_cell "c2")
   with
   | Ok node ->
     Alcotest.(check string) "node id" "db1/seg1/cells/c2"
       (Node_id.to_resource node)
   | Error message -> Alcotest.failf "insert failed: %s" message);
  check_bool "node count grew" true (Graph.node_count env.graph > before);
  (* the new object is navigable and its referencers registered *)
  (match Graph.object_node env.graph (Oid.make ~relation:"cells" ~key:"c2") with
   | Some _ -> ()
   | None -> Alcotest.fail "object index not updated");
  check_int "e1 now referenced twice" 2
    (List.length
       (Graph.referencers env.graph (Oid.make ~relation:"effectors" ~key:"e1")));
  (* relation node children sorted and complete *)
  let relation = Graph.node_exn env.graph (Option.get (Graph.relation_node env.graph "cells")) in
  check_int "two cells" 2 (List.length relation.Graph.children)

let test_graph_insert_duplicate () =
  let env = make_env () in
  let catalog = Nf2.Database.catalog env.db in
  match
    Graph.insert_object env.graph catalog Workload.Figure1.cells_schema
      ~key:"c1" (new_cell "c1")
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate must be refused"

let test_graph_delete_object () =
  let env = make_env () in
  let before = Graph.node_count env.graph in
  let c1 = Oid.make ~relation:"cells" ~key:"c1" in
  (match Graph.delete_object env.graph c1 with
   | Ok () -> ()
   | Error message -> Alcotest.failf "delete failed: %s" message);
  check_bool "nodes removed" true (Graph.node_count env.graph < before);
  check_bool "object gone" true (Graph.object_node env.graph c1 = None);
  (* its references were unhooked *)
  check_int "e1 unreferenced" 0
    (List.length
       (Graph.referencers env.graph (Oid.make ~relation:"effectors" ~key:"e1")))

let test_graph_delete_referenced_refused () =
  let env = make_env () in
  let e1 = Oid.make ~relation:"effectors" ~key:"e1" in
  match Graph.delete_object env.graph e1 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "deleting referenced common data must be refused"

let test_graph_delete_after_unreference () =
  let env = make_env () in
  let c1 = Oid.make ~relation:"cells" ~key:"c1" in
  let e1 = Oid.make ~relation:"effectors" ~key:"e1" in
  (match Graph.delete_object env.graph c1 with
   | Ok () -> ()
   | Error message -> Alcotest.failf "cell delete failed: %s" message);
  match Graph.delete_object env.graph e1 with
  | Ok () -> ()
  | Error message -> Alcotest.failf "now deletable: %s" message

(* ---------------------------------------------------------- Executor level *)

let test_executor_insert () =
  let env = make_env () in
  (match Query.Executor.insert_object env.executor ~txn:1 "cells" (new_cell "c2") with
   | Ok oid -> Alcotest.(check string) "oid" "cells/c2" (Oid.to_string oid)
   | Error error ->
     Alcotest.failf "insert failed: %s"
       (Format.asprintf "%a" Query.Executor.pp_error error));
  (* X held on the new object, IX on the relation *)
  check_bool "X on c2" true
    (Mode.equal
       (Table.held env.table ~txn:1 ~resource:"db1/seg1/cells/c2")
       Mode.X);
  check_bool "IX on cells" true
    (Mode.equal (Table.held env.table ~txn:1 ~resource:"db1/seg1/cells") Mode.IX);
  (* it is really in the database *)
  check_bool "db has c2" true
    (Option.is_some
       (Nf2.Database.deref env.db (Oid.make ~relation:"cells" ~key:"c2")));
  (* and queryable after commit *)
  let (_ : Table.grant list) =
    Colock.Protocol.end_of_transaction env.protocol ~txn:1
  in
  match
    Query.Executor.run_string env.executor ~txn:2
      "SELECT c FROM c IN cells WHERE c.cell_id = 'c2' FOR READ"
  with
  | Ok result -> check_int "one row" 1 (List.length result.Query.Executor.rows)
  | Error _ -> Alcotest.fail "query after insert failed"

let test_executor_insert_duplicate_key () =
  let env = make_env () in
  match Query.Executor.insert_object env.executor ~txn:1 "cells" (new_cell "c1") with
  | Error (Query.Executor.Database_error _) -> ()
  | Error _ | Ok _ -> Alcotest.fail "duplicate key must surface"

let test_executor_delete () =
  let env = make_env () in
  let c1 = Oid.make ~relation:"cells" ~key:"c1" in
  (match Query.Executor.delete_object env.executor ~txn:1 c1 with
   | Ok () -> ()
   | Error error ->
     Alcotest.failf "delete failed: %s"
       (Format.asprintf "%a" Query.Executor.pp_error error));
  check_bool "gone from db" true (Nf2.Database.deref env.db c1 = None);
  check_bool "gone from graph" true (Graph.object_node env.graph c1 = None)

let test_executor_delete_referenced () =
  let env = make_env () in
  let e1 = Oid.make ~relation:"effectors" ~key:"e1" in
  match Query.Executor.delete_object env.executor ~txn:1 e1 with
  | Error (Query.Executor.Graph_error _) -> ()
  | Error _ | Ok () -> Alcotest.fail "must refuse deleting referenced data"

(* ----------------------------------------------------- Phantom protection *)

let test_phantom_scan_blocks_insert () =
  (* T1 scans the whole relation (S on the relation node); T2's insert needs
     IX there: blocked — no phantom can appear under T1's scan. *)
  let db =
    Workload.Generator.manufacturing
      { Workload.Generator.default_manufacturing with cells = 40 }
  in
  let graph = Graph.build db in
  let table = Table.create () in
  let protocol = Colock.Protocol.create graph table in
  let executor = Query.Executor.create ~threshold:10 db protocol in
  (match
     Query.Executor.run_string executor ~txn:1 "SELECT c FROM c IN cells FOR READ"
   with
   | Ok result ->
     check_int "scan rows" 40 (List.length result.Query.Executor.rows)
   | Error _ -> Alcotest.fail "scan failed");
  check_bool "relation S-locked" true
    (Mode.equal (Table.held table ~txn:1 ~resource:"db1/seg1/cells") Mode.S);
  match
    Query.Executor.insert_object executor ~txn:2 ~wait:false "cells"
      (new_cell "c99")
  with
  | Error (Query.Executor.Blocked { blockers; _ }) ->
    Alcotest.(check (list int)) "blocked by the scanner" [ 1 ] blockers
  | Error _ | Ok _ -> Alcotest.fail "insert must block under a relation scan"

let test_phantom_member_read_does_not_block_insert () =
  (* Finer-granule reads do not protect against phantoms (the paper's §5
     future work) — inserts of NEW objects proceed. *)
  let env = make_env () in
  (match
     Query.Executor.run_string env.executor ~txn:1
       "SELECT o FROM c IN cells, o IN c.c_objects WHERE c.cell_id = 'c1' FOR READ"
   with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "read failed");
  match
    Query.Executor.insert_object env.executor ~txn:2 ~wait:false "cells"
      (new_cell "c2")
  with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "insert of a new object should proceed"

let test_insert_insert_same_key_conflict () =
  (* Two concurrent inserts of the same key collide on the future node. *)
  let env = make_env () in
  (match Query.Executor.insert_object env.executor ~txn:1 "cells" (new_cell "c2") with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "first insert");
  match
    Query.Executor.insert_object env.executor ~txn:2 ~wait:false "cells"
      (new_cell "c2")
  with
  | Error (Query.Executor.Blocked _) -> ()
  | Error _ | Ok _ -> Alcotest.fail "second insert must block, not duplicate"

let () =
  Alcotest.run "dml"
    [ ("graph",
       [ Alcotest.test_case "insert object" `Quick test_graph_insert_object;
         Alcotest.test_case "insert duplicate" `Quick
           test_graph_insert_duplicate;
         Alcotest.test_case "delete object" `Quick test_graph_delete_object;
         Alcotest.test_case "delete referenced refused" `Quick
           test_graph_delete_referenced_refused;
         Alcotest.test_case "delete after unreference" `Quick
           test_graph_delete_after_unreference ]);
      ("executor",
       [ Alcotest.test_case "insert" `Quick test_executor_insert;
         Alcotest.test_case "insert duplicate key" `Quick
           test_executor_insert_duplicate_key;
         Alcotest.test_case "delete" `Quick test_executor_delete;
         Alcotest.test_case "delete referenced" `Quick
           test_executor_delete_referenced ]);
      ("phantoms",
       [ Alcotest.test_case "scan blocks insert" `Quick
           test_phantom_scan_blocks_insert;
         Alcotest.test_case "member read does not" `Quick
           test_phantom_member_read_does_not_block_insert;
         Alcotest.test_case "insert/insert same key" `Quick
           test_insert_insert_same_key_conflict ]) ]
