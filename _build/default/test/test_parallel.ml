(* Real-concurrency tests: OCaml 5 domains blocking on the protocol through
   Colock.Blocking. Outcomes are nondeterministic in scheduling but the
   invariants are not: mutual exclusion under X, progress despite deadlocks,
   and a drained lock table at the end. *)

module Mode = Lockmgr.Lock_mode
module Table = Lockmgr.Lock_table
module Graph = Colock.Instance_graph
module Node_id = Colock.Node_id

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make_blocking () =
  let db = Workload.Figure1.database () in
  let graph = Graph.build db in
  let table = Table.create () in
  let protocol = Colock.Protocol.create graph table in
  (table, Colock.Blocking.create protocol)

let node steps = Option.get (Node_id.of_steps steps)
let robot_r1 = node [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r1" ]
let robot_r2 = node [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r2" ]

let test_mutual_exclusion_under_x () =
  let table, blocking = make_blocking () in
  let domains = 4 and increments = 50 in
  (* the X lock on robot r1 is the only thing protecting this counter *)
  let counter = ref 0 in
  let worker domain_index () =
    for i = 0 to increments - 1 do
      let txn = (domain_index * increments) + i + 1 in
      Colock.Blocking.run_txn blocking ~txn
        ~locks:[ (robot_r1, Mode.X) ]
        (fun () -> incr counter)
    done
  in
  let spawned =
    List.init domains (fun index -> Domain.spawn (worker index))
  in
  List.iter Domain.join spawned;
  check_int "no lost update" (domains * increments) !counter;
  check_int "table drained" 0 (Table.entry_count table)

let test_deadlock_recovery_across_domains () =
  let table, blocking = make_blocking () in
  (* opposite acquisition orders force deadlocks; run_txn retries victims *)
  let completed = Atomic.make 0 in
  let worker (first, second) base () =
    for i = 0 to 19 do
      let txn = base + i + 1 in
      Colock.Blocking.run_txn blocking ~txn
        ~locks:[ (first, Mode.X); (second, Mode.X) ]
        (fun () -> Atomic.incr completed)
    done
  in
  let a = Domain.spawn (worker (robot_r1, robot_r2) 0) in
  let b = Domain.spawn (worker (robot_r2, robot_r1) 1000) in
  Domain.join a;
  Domain.join b;
  check_int "all transactions completed" 40 (Atomic.get completed);
  check_int "table drained" 0 (Table.entry_count table)

let test_shared_readers_make_progress () =
  let table, blocking = make_blocking () in
  let reads = Atomic.make 0 in
  let worker base () =
    for i = 0 to 29 do
      let txn = base + i + 1 in
      Colock.Blocking.run_txn blocking ~txn
        ~locks:[ (robot_r1, Mode.S); (robot_r2, Mode.S) ]
        (fun () -> Atomic.incr reads)
    done
  in
  let spawned = List.init 3 (fun index -> Domain.spawn (worker (index * 100))) in
  List.iter Domain.join spawned;
  check_int "all reads done" 90 (Atomic.get reads);
  check_int "table drained" 0 (Table.entry_count table)

let test_mixed_readers_and_writers () =
  let table, blocking = make_blocking () in
  let log = ref [] in
  (* the X lock serializes appends; S transactions never appear inside a
     writer's critical section because they would need the same lock *)
  let writer base () =
    for i = 0 to 14 do
      let txn = base + i + 1 in
      Colock.Blocking.run_txn blocking ~txn
        ~locks:[ (robot_r1, Mode.X) ]
        (fun () -> log := `Write txn :: !log)
    done
  in
  let reader base () =
    for i = 0 to 14 do
      let txn = base + i + 1 in
      Colock.Blocking.run_txn blocking ~txn
        ~locks:[ (robot_r1, Mode.S) ]
        (fun () -> ignore (List.length !log))
    done
  in
  let spawned =
    [ Domain.spawn (writer 0); Domain.spawn (writer 100);
      Domain.spawn (reader 200); Domain.spawn (reader 300) ]
  in
  List.iter Domain.join spawned;
  check_int "30 writes recorded" 30 (List.length !log);
  check_bool "no duplicate writes" true
    (List.length (List.sort_uniq compare !log) = 30);
  check_int "table drained" 0 (Table.entry_count table)

let test_third_party_victim_regression () =
  (* Regression: when the deadlock victim is NOT the requester, the resolver
     must not spin holding the mutex waiting for the cycle to vanish (the
     parked victim can only clean up after re-acquiring the mutex). Three
     writers (one in reverse order) plus readers reproduce the original
     hang reliably at a few hundred iterations. *)
  let table, blocking = make_blocking () in
  let c_objects = node [ "db1"; "seg1"; "cells"; "c1"; "c_objects" ] in
  let writes = Atomic.make 0 in
  let writer ~base ~first ~second () =
    for i = 0 to 199 do
      Colock.Blocking.run_txn blocking ~txn:(base + i)
        ~locks:[ (first, Mode.X); (second, Mode.X) ]
        (fun () -> Atomic.incr writes)
    done
  in
  let reader ~base () =
    for i = 0 to 199 do
      Colock.Blocking.run_txn blocking ~txn:(base + i)
        ~locks:[ (c_objects, Mode.S) ]
        (fun () -> ())
    done
  in
  let domains =
    [ Domain.spawn (writer ~base:10_000 ~first:robot_r1 ~second:robot_r2);
      Domain.spawn (writer ~base:20_000 ~first:robot_r1 ~second:robot_r2);
      Domain.spawn (writer ~base:30_000 ~first:robot_r2 ~second:robot_r1);
      Domain.spawn (reader ~base:40_000);
      Domain.spawn (reader ~base:50_000) ]
  in
  List.iter Domain.join domains;
  check_int "600 writes" 600 (Atomic.get writes);
  check_int "table drained" 0 (Table.entry_count table)

let () =
  Alcotest.run "parallel"
    [ ("domains",
       [ Alcotest.test_case "mutual exclusion under X" `Quick
           test_mutual_exclusion_under_x;
         Alcotest.test_case "deadlock recovery" `Quick
           test_deadlock_recovery_across_domains;
         Alcotest.test_case "shared readers" `Quick
           test_shared_readers_make_progress;
         Alcotest.test_case "mixed readers and writers" `Quick
           test_mixed_readers_and_writers;
         Alcotest.test_case "third-party victim regression" `Quick
           test_third_party_victim_regression ]) ]
