(* Property-based tests (QCheck) on the core invariants of the system:
   protocol plan structure, conflict-freedom oracle, lock-table consistency,
   parser roundtrips, graph/value agreement, statistics sanity, escalation
   coverage preservation, checkout persistence, simulator accounting. *)

module Mode = Lockmgr.Lock_mode
module Table = Lockmgr.Lock_table
module Node_id = Colock.Node_id
module Graph = Colock.Instance_graph
module Protocol = Colock.Protocol
module Oid = Nf2.Oid
module Path = Nf2.Path
module Value = Nf2.Value

let data_modes = [ Mode.S; Mode.X ]
let request_modes = [ Mode.IS; Mode.IX; Mode.S; Mode.X ]

(* A deterministic family of generated databases, selected by index. *)
let database_pool =
  lazy
    (Array.of_list
       [ Workload.Figure1.database ();
         Workload.Figure1.database ~c_objects:10 ();
         Workload.Generator.manufacturing
           { Workload.Generator.cells = 3; objects_per_cell = 5;
             robots_per_cell = 3; effectors = 4; effectors_per_robot = 2;
             seed = 13 };
         Workload.Generator.manufacturing
           { Workload.Generator.cells = 2; objects_per_cell = 2;
             robots_per_cell = 2; effectors = 2; effectors_per_robot = 2;
             seed = 5 };
         Workload.Generator.deep
           { Workload.Generator.depth = 2; fanout = 2; objects = 3;
             share = true; parts = 3; seed = 3 };
         Workload.Generator.deep
           { Workload.Generator.depth = 3; fanout = 2; objects = 2;
             share = false; parts = 0; seed = 9 } ])

let graph_pool =
  lazy (Array.map Graph.build (Lazy.force database_pool))

let pick_graph index =
  let pool = Lazy.force graph_pool in
  pool.(index mod Array.length pool)

let all_nodes graph =
  let nodes = Graph.fold (fun node accu -> node.Graph.id :: accu) graph [] in
  let array = Array.of_list nodes in
  Array.sort Node_id.compare array;
  array

(* ------------------------------------------------------ plan invariants *)

let plan_case_gen =
  QCheck.Gen.(
    quad (int_range 0 100) (int_range 0 10_000)
      (oneofl request_modes) (int_range 0 3))

let arbitrary_plan_case =
  QCheck.make
    ~print:(fun (db, pick, mode, rule) ->
      Printf.sprintf "db=%d pick=%d mode=%s rule=%d" db pick
        (Mode.to_string mode) rule)
    plan_case_gen

let protocol_for graph rule_index =
  let table = Table.create () in
  let rule =
    if rule_index mod 2 = 0 then Protocol.Rule_4_prime else Protocol.Rule_4
  in
  Protocol.create ~rule graph table

let prop_plan_parents_before_children =
  QCheck.Test.make ~name:"plan lists parents before children" ~count:300
    arbitrary_plan_case
    (fun (db, pick, mode, rule) ->
      let graph = pick_graph db in
      let nodes = all_nodes graph in
      let target = nodes.(pick mod Array.length nodes) in
      let protocol = protocol_for graph rule in
      let steps = Protocol.plan protocol ~txn:1 target mode in
      let seen = Hashtbl.create 32 in
      List.for_all
        (fun { Protocol.node; _ } ->
          let parent_ok =
            match Node_id.parent node with
            | None -> true
            | Some parent -> Hashtbl.mem seen (Node_id.to_resource parent)
          in
          Hashtbl.replace seen (Node_id.to_resource node) ();
          parent_ok)
        steps)

let prop_plan_parent_modes_cover_intentions =
  QCheck.Test.make
    ~name:"every planned node's parent carries the needed intention"
    ~count:300 arbitrary_plan_case
    (fun (db, pick, mode, rule) ->
      let graph = pick_graph db in
      let nodes = all_nodes graph in
      let target = nodes.(pick mod Array.length nodes) in
      let protocol = protocol_for graph rule in
      let steps = Protocol.plan protocol ~txn:1 target mode in
      let planned = Hashtbl.create 32 in
      List.iter
        (fun { Protocol.node; mode; _ } ->
          Hashtbl.replace planned (Node_id.to_resource node) mode)
        steps;
      List.for_all
        (fun { Protocol.node; mode; _ } ->
          match Node_id.parent node with
          | None -> true
          | Some parent -> (
            match Hashtbl.find_opt planned (Node_id.to_resource parent) with
            | None -> false
            | Some parent_mode ->
              Mode.leq (Mode.intention_for mode) parent_mode))
        steps)

let prop_plan_covers_reachable_entry_points =
  QCheck.Test.make
    ~name:"downward propagation reaches every dependent entry point"
    ~count:300 arbitrary_plan_case
    (fun (db, pick, mode, rule) ->
      QCheck.assume (List.mem mode data_modes);
      let graph = pick_graph db in
      let nodes = all_nodes graph in
      let target = nodes.(pick mod Array.length nodes) in
      let protocol = protocol_for graph rule in
      let steps = Protocol.plan protocol ~txn:1 target mode in
      let planned = Hashtbl.create 32 in
      List.iter
        (fun { Protocol.node; mode; _ } ->
          Hashtbl.replace planned (Node_id.to_resource node) mode)
        steps;
      (* transitively collect reachable entry points *)
      let rec reachable accu node =
        List.fold_left
          (fun accu entry ->
            let key = Node_id.to_resource entry in
            if List.mem key accu then accu
            else reachable (key :: accu) entry)
          accu
          (Colock.Units.entry_points_below graph node)
      in
      List.for_all
        (fun key ->
          match Hashtbl.find_opt planned key with
          | Some planned_mode -> Mode.grants_read planned_mode
          | None -> false)
        (reachable [] target))

let prop_plan_disjoint_is_system_r =
  QCheck.Test.make ~name:"disjoint data: plan is the System R chain"
    ~count:200
    (QCheck.make
       ~print:(fun (pick, mode) ->
         Printf.sprintf "pick=%d mode=%s" pick (Mode.to_string mode))
       QCheck.Gen.(pair (int_range 0 10_000) (oneofl request_modes)))
    (fun (pick, mode) ->
      let graph = pick_graph 5 (* the share=false deep database *) in
      let nodes = all_nodes graph in
      let target = nodes.(pick mod Array.length nodes) in
      let protocol = protocol_for graph 0 in
      let steps = Protocol.plan protocol ~txn:1 target mode in
      let expected =
        List.map
          (fun ancestor -> (ancestor, Mode.intention_for mode))
          (Graph.ancestors graph target)
        @ [ (target, mode) ]
      in
      List.length steps = List.length expected
      && List.for_all2
           (fun { Protocol.node; mode; _ } (expected_node, expected_mode) ->
             Node_id.equal node expected_node && Mode.equal mode expected_mode)
           steps expected)

(* ----------------------------------------------------------- oracle *)

let scenario_gen =
  QCheck.Gen.(
    pair (int_range 0 100)
      (list_size (int_range 1 15)
         (triple (int_range 1 5) (int_range 0 10_000) (oneofl request_modes))))

let arbitrary_scenario =
  QCheck.make
    ~print:(fun (db, ops) ->
      Printf.sprintf "db=%d ops=%s" db
        (String.concat ";"
           (List.map
              (fun (txn, pick, mode) ->
                Printf.sprintf "T%d:%d:%s" txn pick (Mode.to_string mode))
              ops)))
    scenario_gen

let prop_no_hidden_conflicts_ever =
  QCheck.Test.make
    ~name:"granted locks never hide an effective conflict (any database)"
    ~count:150 arbitrary_scenario
    (fun (db, operations) ->
      let graph = pick_graph db in
      let nodes = all_nodes graph in
      let table = Table.create () in
      let rights = Authz.Rights.create () in
      let protocol = Protocol.create ~rights graph table in
      (* txn 2 may not modify the effector library (rule 4' diversity) *)
      Authz.Rights.revoke_modify rights ~txn:2 ~relation:"effectors";
      List.iter
        (fun (txn, pick, mode) ->
          let target = nodes.(pick mod Array.length nodes) in
          match Protocol.try_acquire protocol ~txn target mode with
          | Protocol.Acquired _ -> ()
          | Protocol.Blocked _ -> ())
        operations;
      let txns = [ 1; 2; 3; 4; 5 ] in
      Array.for_all
        (fun id ->
          let effective =
            List.map (fun txn -> Protocol.effective_mode protocol ~txn id) txns
          in
          let writers =
            List.length (List.filter Mode.grants_write effective)
          in
          let readers = List.length (List.filter Mode.grants_read effective) in
          writers = 0 || (writers = 1 && readers = 1))
        nodes)

(* ------------------------------------------------------------ lock table *)

let table_ops_gen =
  QCheck.Gen.(
    list_size (int_range 1 40)
      (triple (int_range 1 6) (int_range 0 7)
         (oneofl (Mode.NL :: request_modes @ [ Mode.SIX ]))))

let arbitrary_table_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (fun (txn, res, mode) ->
             Printf.sprintf "T%d:r%d:%s" txn res (Mode.to_string mode))
           ops))
    table_ops_gen

let prop_granted_groups_compatible =
  QCheck.Test.make
    ~name:"lock table: granted groups stay pairwise compatible" ~count:300
    arbitrary_table_ops
    (fun operations ->
      let table = Table.create () in
      List.iter
        (fun (txn, res, mode) ->
          let resource = Printf.sprintf "r%d" res in
          (* mix requests and occasional releases *)
          if Mode.equal mode Mode.NL then
            ignore (Table.release_all table ~txn)
          else ignore (Table.request table ~txn ~resource mode))
        operations;
      List.for_all
        (fun resource ->
          let holders = Table.holders table ~resource in
          List.for_all
            (fun (txn_a, mode_a) ->
              List.for_all
                (fun (txn_b, mode_b) ->
                  txn_a = txn_b || Mode.compatible mode_a mode_b)
                holders)
            holders)
        (Table.resources table))

let prop_entry_count_consistent =
  QCheck.Test.make ~name:"lock table: entry count matches holders" ~count:300
    arbitrary_table_ops
    (fun operations ->
      let table = Table.create () in
      List.iter
        (fun (txn, res, mode) ->
          let resource = Printf.sprintf "r%d" res in
          if Mode.equal mode Mode.NL then ignore (Table.release_all table ~txn)
          else ignore (Table.request table ~txn ~resource mode))
        operations;
      let counted =
        List.fold_left
          (fun total resource ->
            total + List.length (Table.holders table ~resource))
          0 (Table.resources table)
      in
      Table.entry_count table = counted
      && Table.peak_entry_count table >= Table.entry_count table)

(* ---------------------------------------------------------------- parser *)

let ident_gen =
  QCheck.Gen.(
    let* first = oneofl [ "c"; "r"; "o"; "e"; "part"; "cell_id"; "x1" ] in
    return first)

let path_gen =
  QCheck.Gen.(
    let* steps = list_size (int_range 1 3) ident_gen in
    return (Path.of_list steps))

let literal_gen =
  QCheck.Gen.(
    oneof
      [ map (fun s -> Query.Ast.L_str s) (oneofl [ "c1"; "r2"; "abc"; "" ]);
        map (fun i -> Query.Ast.L_int i) (int_range 0 9999);
        map (fun b -> Query.Ast.L_bool b) bool ])

let ast_gen =
  QCheck.Gen.(
    let* first_var = oneofl [ "c"; "q" ] in
    let* relation = oneofl [ "cells"; "effectors"; "parts" ] in
    let* extra_vars = int_range 0 2 in
    let vars =
      first_var :: List.init extra_vars (fun index -> Printf.sprintf "v%d" index)
    in
    let* bindings =
      let rec build accu = function
        | [] -> return (List.rev accu)
        | var :: rest ->
          let* binding =
            if accu = [] then
              return { Query.Ast.var; source = Query.Ast.From_relation relation }
            else
              let* base =
                oneofl (List.map (fun b -> b.Query.Ast.var) accu)
              in
              let* path = path_gen in
              return { Query.Ast.var; source = Query.Ast.From_path (base, path) }
          in
          build (binding :: accu) rest
      in
      build [] vars
    in
    let* select = oneofl vars in
    let* conditions =
      list_size (int_range 0 2)
        (let* var = oneofl vars in
         let* path = path_gen in
         let* value = literal_gen in
         return { Query.Ast.cond_var = var; cond_path = path; value })
    in
    let* clause =
      oneofl [ Query.Ast.For_read; Query.Ast.For_update; Query.Ast.For_delete ]
    in
    return { Query.Ast.select; bindings; where = conditions; clause })

let prop_parser_roundtrip =
  QCheck.Test.make ~name:"parser: parse (pp ast) = ast" ~count:300
    (QCheck.make
       ~print:(fun ast -> Format.asprintf "%a" Query.Ast.pp ast)
       ast_gen)
    (fun ast ->
      (* string literals with quotes/newlines are out of the dialect *)
      let printable = Format.asprintf "%a" Query.Ast.pp ast in
      match Query.Parser.parse printable with
      | Ok reparsed -> reparsed = ast
      | Error _ -> false)

(* ------------------------------------------------- graph/value agreement *)

let prop_nodes_at_path_matches_projection =
  QCheck.Test.make
    ~name:"instance nodes at a path agree with value projection" ~count:200
    (QCheck.make
       ~print:(fun (db, pick) -> Printf.sprintf "db=%d pick=%d" db pick)
       QCheck.Gen.(pair (int_range 0 100) (int_range 0 1000)))
    (fun (db_index, pick) ->
      let pool = Lazy.force database_pool in
      let db = pool.(db_index mod Array.length pool) in
      let graph = pick_graph db_index in
      let stores = Nf2.Database.relations db in
      let store = List.nth stores (pick mod List.length stores) in
      let schema = Nf2.Relation.schema store in
      let paths = Nf2.Schema.attr_paths schema in
      QCheck.assume (paths <> []);
      let path = List.nth paths (pick mod List.length paths) in
      List.for_all
        (fun (key, value) ->
          let oid = Oid.make ~relation:(Nf2.Relation.name store) ~key in
          let node_count = List.length (Graph.nodes_at_path graph oid path) in
          let value_count = List.length (Value.project value path) in
          node_count = value_count)
        (Nf2.Relation.objects store))

(* ------------------------------------------------------------- statistics *)

let prop_statistics_sane =
  QCheck.Test.make ~name:"statistics: estimates stay within bounds" ~count:100
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 100))
    (fun db_index ->
      let pool = Lazy.force database_pool in
      let db = pool.(db_index mod Array.length pool) in
      List.for_all
        (fun store ->
          let stats = Nf2.Statistics.compute store in
          let cardinality = float_of_int stats.Nf2.Statistics.cardinality in
          List.for_all
            (fun (_path, size) -> size >= 0.0)
            stats.Nf2.Statistics.collection_sizes
          && List.for_all
               (fun (_path, count) -> count >= 0)
               stats.Nf2.Statistics.distinct_counts
          && Nf2.Statistics.estimate_matching stats None <= cardinality +. 0.01
          && List.for_all
               (fun (path, _count) ->
                 let estimate =
                   Nf2.Statistics.estimate_matching stats (Some path)
                 in
                 estimate >= 0.0 && estimate <= cardinality +. 0.01)
               stats.Nf2.Statistics.distinct_counts)
        (Nf2.Database.relations db))

(* ------------------------------------------------------------- escalation *)

let prop_escalation_preserves_coverage =
  QCheck.Test.make
    ~name:"escalation: members stay effectively covered" ~count:100
    (QCheck.make
       ~print:(fun (members, threshold) ->
         Printf.sprintf "members=%d threshold=%d" members threshold)
       QCheck.Gen.(pair (int_range 2 20) (int_range 1 10)))
    (fun (members, threshold) ->
      let db = Workload.Figure1.database ~c_objects:members () in
      let graph = Graph.build db in
      let table = Table.create () in
      let protocol = Protocol.create graph table in
      let c1 = Option.get (Graph.object_node graph (Oid.make ~relation:"cells" ~key:"c1")) in
      let holu = Node_id.child c1 "c_objects" in
      let member_nodes = (Graph.node_exn graph holu).Graph.children in
      List.iter
        (fun member ->
          match Protocol.acquire protocol ~txn:1 member Mode.S with
          | Protocol.Acquired _ -> ()
          | Protocol.Blocked _ -> ())
        member_nodes;
      let (_ : Colock.Escalation.escalation_result) =
        Colock.Escalation.maybe_escalate protocol ~txn:1 ~threshold
          ~parent:holu
      in
      List.for_all
        (fun member ->
          Mode.grants_read (Protocol.effective_mode protocol ~txn:1 member))
        member_nodes)

(* --------------------------------------------------------------- checkout *)

let prop_checkout_persistence_roundtrip =
  QCheck.Test.make
    ~name:"checkout: long locks survive save/restore exactly" ~count:50
    (QCheck.make
       ~print:(fun picks -> String.concat "," (List.map string_of_int picks))
       QCheck.Gen.(list_size (int_range 1 3) (int_range 0 100)))
    (fun picks ->
      let db = Workload.Figure1.database () in
      let graph = Graph.build db in
      let lock_file = Filename.temp_file "colock_prop_locks" ".txt" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove lock_file with Sys_error _ -> ())
        (fun () ->
          let table = Table.create () in
          let protocol = Protocol.create graph table in
          let manager = Txn.Txn_manager.create protocol in
          let checkout = Txn.Checkout.create ~lock_file manager db in
          let txn = Txn.Txn_manager.begin_txn ~kind:Txn.Transaction.Long manager in
          let oids =
            [ Oid.make ~relation:"cells" ~key:"c1";
              Oid.make ~relation:"effectors" ~key:"e1";
              Oid.make ~relation:"effectors" ~key:"e3" ]
          in
          List.iter
            (fun pick ->
              let oid = List.nth oids (pick mod List.length oids) in
              let mode = if pick mod 2 = 0 then `Read else `Update in
              ignore (Txn.Checkout.check_out checkout txn oid ~mode))
            picks;
          let before =
            List.filter
              (fun (_resource, _mode, duration) -> duration = Table.Long)
              (Table.locks_of table ~txn:txn.Txn.Transaction.id)
          in
          Txn.Checkout.save_locks checkout;
          let table2 = Table.create () in
          let protocol2 = Protocol.create graph table2 in
          let manager2 = Txn.Txn_manager.create protocol2 in
          let checkout2 = Txn.Checkout.create ~lock_file manager2 db in
          let restored = Txn.Checkout.restore_locks checkout2 in
          let after =
            List.filter
              (fun (_resource, _mode, duration) -> duration = Table.Long)
              (Table.locks_of table2 ~txn:txn.Txn.Transaction.id)
          in
          restored = List.length before && before = after))

(* -------------------------------------------------------------- simulator *)

let prop_sim_accounting =
  QCheck.Test.make ~name:"simulator: accounting identities hold" ~count:60
    (QCheck.make
       ~print:(fun (jobs, read_pct, seed) ->
         Printf.sprintf "jobs=%d read=%d%% seed=%d" jobs read_pct seed)
       QCheck.Gen.(triple (int_range 1 25) (int_range 0 100) (int_range 0 999)))
    (fun (jobs, read_pct, seed) ->
      let db =
        Workload.Generator.manufacturing
          { Workload.Generator.default_manufacturing with cells = 3; seed = 7 }
      in
      let graph = Graph.build db in
      let mix =
        { Sim.Scenario.default_mix with
          jobs; read_fraction = float_of_int read_pct /. 100.0; seed }
      in
      let specs = Sim.Scenario.manufacturing_mix db graph mix in
      let table = Table.create () in
      let protocol = Protocol.create graph table in
      let sim_jobs =
        Sim.Scenario.compile graph (Sim.Scenario.Proposed protocol) specs
      in
      let metrics = Sim.Runner.run ~table sim_jobs in
      metrics.Sim.Metrics.committed + metrics.Sim.Metrics.gave_up = jobs
      && metrics.Sim.Metrics.total_response
         >= metrics.Sim.Metrics.committed * mix.Sim.Scenario.access_cost
      && metrics.Sim.Metrics.makespan >= mix.Sim.Scenario.access_cost
      && Table.entry_count table = 0)

let () =
  Alcotest.run "properties"
    [ ("plan",
       List.map QCheck_alcotest.to_alcotest
         [ prop_plan_parents_before_children;
           prop_plan_parent_modes_cover_intentions;
           prop_plan_covers_reachable_entry_points;
           prop_plan_disjoint_is_system_r ]);
      ("oracle",
       List.map QCheck_alcotest.to_alcotest [ prop_no_hidden_conflicts_ever ]);
      ("lock_table",
       List.map QCheck_alcotest.to_alcotest
         [ prop_granted_groups_compatible; prop_entry_count_consistent ]);
      ("parser",
       List.map QCheck_alcotest.to_alcotest [ prop_parser_roundtrip ]);
      ("graph",
       List.map QCheck_alcotest.to_alcotest
         [ prop_nodes_at_path_matches_projection ]);
      ("statistics",
       List.map QCheck_alcotest.to_alcotest [ prop_statistics_sane ]);
      ("escalation",
       List.map QCheck_alcotest.to_alcotest
         [ prop_escalation_preserves_coverage ]);
      ("checkout",
       List.map QCheck_alcotest.to_alcotest
         [ prop_checkout_persistence_roundtrip ]);
      ("simulator",
       List.map QCheck_alcotest.to_alcotest [ prop_sim_accounting ]) ]
