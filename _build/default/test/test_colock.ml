(* Tests for the core lock-graph machinery: object-specific lock graphs
   (Fig. 5), instance graphs, units (Fig. 6), query-specific lock graphs and
   escalation. *)

module Path = Nf2.Path
module Oid = Nf2.Oid
module Mode = Lockmgr.Lock_mode
module Table = Lockmgr.Lock_table
module Node_id = Colock.Node_id
module Graph = Colock.Instance_graph
module Units = Colock.Units

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let node steps = Option.get (Node_id.of_steps steps)
let fig1 () = Workload.Figure1.database ()
let graph_of db = Graph.build db

(* ---------------------------------------------------------------- Node_id *)

let test_node_id_resource () =
  let id = node [ "db1"; "seg1"; "cells"; "c1" ] in
  check_string "resource" "db1/seg1/cells/c1" (Node_id.to_resource id);
  check_int "depth" 4 (Node_id.depth id)

let test_node_id_parent () =
  let id = node [ "db1"; "seg1"; "cells" ] in
  (match Node_id.parent id with
   | Some parent -> check_string "parent" "db1/seg1" (Node_id.to_resource parent)
   | None -> Alcotest.fail "parent expected");
  check_bool "db has no parent" true (Node_id.parent (Node_id.database "db1") = None)

let test_node_id_ancestry () =
  let ancestor = node [ "db1"; "seg1" ] in
  let descendant = node [ "db1"; "seg1"; "cells"; "c1" ] in
  check_bool "ancestor" true (Node_id.is_ancestor ~ancestor descendant);
  check_bool "self" true (Node_id.is_ancestor ~ancestor ancestor);
  check_bool "not descendant" false
    (Node_id.is_ancestor ~ancestor:descendant ancestor);
  check_bool "sibling" false
    (Node_id.is_ancestor ~ancestor:(node [ "db1"; "seg2" ]) descendant)

let test_node_id_escaping () =
  (* member names may contain '/', e.g. rendered oids. *)
  let a = Node_id.child (Node_id.database "db") "x/y" in
  let b = Node_id.child (Node_id.child (Node_id.database "db") "x") "y" in
  check_bool "no collision" false
    (String.equal (Node_id.to_resource a) (Node_id.to_resource b))

(* ----------------------------------------------------------- Object_graph *)

let cells_graph () =
  Colock.Object_graph.of_relation ~database:"db1" Workload.Figure1.cells_schema

let test_object_graph_figure5_structure () =
  let graph = cells_graph () in
  (* The Fig. 5 chain: HeLU db -> HeLU segment -> HoLU relation -> HeLU C.O. *)
  let root = graph.Colock.Object_graph.root in
  check_bool "db is HeLU" true
    (Colock.Lockable.equal root.Colock.Object_graph.kind Colock.Lockable.Helu);
  let segment = List.hd root.Colock.Object_graph.children in
  check_bool "segment is HeLU" true
    (Colock.Lockable.equal segment.Colock.Object_graph.kind
       Colock.Lockable.Helu);
  let relation = List.hd segment.Colock.Object_graph.children in
  check_bool "relation is HoLU" true
    (Colock.Lockable.equal relation.Colock.Object_graph.kind
       Colock.Lockable.Holu);
  let complex_object = Colock.Object_graph.complex_object_node graph in
  check_bool "C.O. is HeLU" true
    (Colock.Lockable.equal complex_object.Colock.Object_graph.kind
       Colock.Lockable.Helu);
  (* C.O. children: BLU cell_id, HoLU c_objects, HoLU robots *)
  match complex_object.Colock.Object_graph.children with
  | [ cell_id; c_objects; robots ] ->
    check_bool "cell_id BLU" true
      (Colock.Lockable.equal cell_id.Colock.Object_graph.kind
         Colock.Lockable.Blu);
    check_bool "c_objects HoLU" true
      (Colock.Lockable.equal c_objects.Colock.Object_graph.kind
         Colock.Lockable.Holu);
    check_bool "robots HoLU" true
      (Colock.Lockable.equal robots.Colock.Object_graph.kind
         Colock.Lockable.Holu);
    (* HoLU c_objects -> HeLU member -> BLUs obj_id, obj_name *)
    (match c_objects.Colock.Object_graph.children with
     | [ member ] ->
       check_bool "c_objects member HeLU" true
         (Colock.Lockable.equal member.Colock.Object_graph.kind
            Colock.Lockable.Helu);
       check_int "two BLUs" 2 (List.length member.Colock.Object_graph.children)
     | _ -> Alcotest.fail "c_objects should have one member node");
    (* HoLU robots -> HeLU member -> robot_id, trajectory, HoLU effectors *)
    (match robots.Colock.Object_graph.children with
     | [ member ] -> (
       match member.Colock.Object_graph.children with
       | [ _robot_id; _trajectory; effectors ] -> (
         check_bool "effectors HoLU" true
           (Colock.Lockable.equal effectors.Colock.Object_graph.kind
              Colock.Lockable.Holu);
         match effectors.Colock.Object_graph.children with
         | [ ref_blu ] ->
           check_bool "ref is BLU" true
             (Colock.Lockable.equal ref_blu.Colock.Object_graph.kind
                Colock.Lockable.Blu);
           check_string "dashed target" "effectors"
             (Option.value ~default:"?" ref_blu.Colock.Object_graph.ref_target)
         | _ -> Alcotest.fail "effectors HoLU should hold one ref BLU")
       | _ -> Alcotest.fail "robot member should have three children")
     | _ -> Alcotest.fail "robots should have one member node")
  | _ -> Alcotest.fail "C.O. cells should have three children"

let test_object_graph_counts () =
  let graph = cells_graph () in
  (* db, seg, rel, C.O., cell_id, c_objects, member, obj_id, obj_name,
     robots, member, robot_id, trajectory, effectors, ref = 15 nodes *)
  check_int "node count" 15 (Colock.Object_graph.node_count graph);
  (* cell_id, obj_id, obj_name, robot_id, trajectory, ref *)
  check_int "blu count" 6 (Colock.Object_graph.blu_count graph)

let test_object_graph_effectors () =
  let graph =
    Colock.Object_graph.of_relation ~database:"db1"
      Workload.Figure1.effectors_schema
  in
  (* db, seg, rel, C.O., eff_id, tool *)
  check_int "node count" 6 (Colock.Object_graph.node_count graph);
  check_int "no refs" 0 (List.length (Colock.Object_graph.reference_nodes graph))

let test_object_graph_reference_nodes () =
  let graph = cells_graph () in
  match Colock.Object_graph.reference_nodes graph with
  | [ (path, target) ] ->
    check_string "path" "robots.effectors" (Path.to_string path);
    check_string "target" "effectors" target
  | _ -> Alcotest.fail "one dashed edge expected"

let test_object_graph_levels () =
  let graph = cells_graph () in
  let levels =
    Colock.Object_graph.levels_to_path graph (Path.of_string "robots.robot_id")
  in
  (* C.O. cells -> HoLU robots -> HeLU member -> BLU robot_id *)
  check_int "four levels" 4 (List.length levels);
  match List.rev levels with
  | deepest :: _ ->
    check_bool "deepest is BLU" true
      (Colock.Lockable.equal deepest.Colock.Object_graph.kind
         Colock.Lockable.Blu)
  | [] -> Alcotest.fail "levels expected"

let test_object_graph_find_path () =
  let graph = cells_graph () in
  (match Colock.Object_graph.find_path graph (Path.of_string "c_objects") with
   | Some found ->
     check_bool "HoLU" true
       (Colock.Lockable.equal found.Colock.Object_graph.kind
          Colock.Lockable.Holu)
   | None -> Alcotest.fail "c_objects expected");
  check_bool "missing" true
    (Colock.Object_graph.find_path graph (Path.of_string "nope") = None)

let test_object_graph_derivation_rules () =
  check_bool "set -> HoLU" true
    (Colock.Lockable.equal
       (Colock.Lockable.derive (Nf2.Schema.Set (Nf2.Schema.Atomic Nf2.Schema.Int)))
       Colock.Lockable.Holu);
  check_bool "list -> HoLU" true
    (Colock.Lockable.equal
       (Colock.Lockable.derive (Nf2.Schema.List (Nf2.Schema.Atomic Nf2.Schema.Int)))
       Colock.Lockable.Holu);
  check_bool "tuple -> HeLU" true
    (Colock.Lockable.equal
       (Colock.Lockable.derive
          (Nf2.Schema.Tuple [ Nf2.Schema.field "x" (Nf2.Schema.Atomic Nf2.Schema.Int) ]))
       Colock.Lockable.Helu);
  check_bool "atomic -> BLU" true
    (Colock.Lockable.equal
       (Colock.Lockable.derive (Nf2.Schema.Atomic Nf2.Schema.Str))
       Colock.Lockable.Blu);
  check_bool "BLU contains nothing" false
    (Colock.Lockable.may_contain Colock.Lockable.Blu Colock.Lockable.Blu);
  check_bool "only BLU references" true
    (Colock.Lockable.may_reference Colock.Lockable.Blu
     && (not (Colock.Lockable.may_reference Colock.Lockable.Holu))
     && not (Colock.Lockable.may_reference Colock.Lockable.Helu))

(* ---------------------------------------------------------- Instance_graph *)

let test_instance_graph_navigation () =
  let graph = graph_of (fig1 ()) in
  check_string "root" "db1" (Node_id.to_resource (Graph.root graph));
  (match Graph.segment_node graph "seg1" with
   | Some id -> check_string "seg1" "db1/seg1" (Node_id.to_resource id)
   | None -> Alcotest.fail "seg1 expected");
  (match Graph.relation_node graph "cells" with
   | Some id -> check_string "cells" "db1/seg1/cells" (Node_id.to_resource id)
   | None -> Alcotest.fail "cells expected");
  match Graph.object_node graph (Oid.make ~relation:"cells" ~key:"c1") with
  | Some id -> check_string "c1" "db1/seg1/cells/c1" (Node_id.to_resource id)
  | None -> Alcotest.fail "c1 expected"

let test_instance_graph_members () =
  let graph = graph_of (fig1 ()) in
  let c1 = Option.get (Graph.object_node graph (Oid.make ~relation:"cells" ~key:"c1")) in
  let robots = Node_id.child c1 "robots" in
  (match Graph.member_node graph robots "r1" with
   | Some id ->
     check_string "r1" "db1/seg1/cells/c1/robots/r1" (Node_id.to_resource id)
   | None -> Alcotest.fail "r1 expected");
  check_bool "missing member" true (Graph.member_node graph robots "r9" = None)

let test_instance_graph_kinds () =
  let graph = graph_of (fig1 ()) in
  let kind_of steps = (Graph.node_exn graph (node steps)).Graph.kind in
  check_bool "db HeLU" true
    (Colock.Lockable.equal (kind_of [ "db1" ]) Colock.Lockable.Helu);
  check_bool "segment HeLU" true
    (Colock.Lockable.equal (kind_of [ "db1"; "seg1" ]) Colock.Lockable.Helu);
  check_bool "relation HoLU" true
    (Colock.Lockable.equal (kind_of [ "db1"; "seg1"; "cells" ]) Colock.Lockable.Holu);
  check_bool "object HeLU" true
    (Colock.Lockable.equal
       (kind_of [ "db1"; "seg1"; "cells"; "c1" ])
       Colock.Lockable.Helu);
  check_bool "robots HoLU" true
    (Colock.Lockable.equal
       (kind_of [ "db1"; "seg1"; "cells"; "c1"; "robots" ])
       Colock.Lockable.Holu);
  check_bool "robot HeLU" true
    (Colock.Lockable.equal
       (kind_of [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r1" ])
       Colock.Lockable.Helu);
  check_bool "trajectory BLU" true
    (Colock.Lockable.equal
       (kind_of [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r1"; "trajectory" ])
       Colock.Lockable.Blu)

let test_instance_graph_entry_points () =
  let graph = graph_of (fig1 ()) in
  let is_entry steps = (Graph.node_exn graph (node steps)).Graph.entry_point in
  check_bool "effector e1 is entry point" true
    (is_entry [ "db1"; "seg2"; "effectors"; "e1" ]);
  check_bool "cell c1 is not" false (is_entry [ "db1"; "seg1"; "cells"; "c1" ]);
  check_bool "relation effectors is not" false
    (is_entry [ "db1"; "seg2"; "effectors" ])

let test_instance_graph_referencers () =
  let graph = graph_of (fig1 ()) in
  let refs_to key = Graph.referencers graph (Oid.make ~relation:"effectors" ~key) in
  check_int "e1: one referencer (r1)" 1 (List.length (refs_to "e1"));
  check_int "e2: two referencers (r1, r2)" 2 (List.length (refs_to "e2"));
  check_int "e3: one referencer (r2)" 1 (List.length (refs_to "e3"));
  List.iter
    (fun id ->
      check_bool "referencers live under robots" true
        (Node_id.is_ancestor
           ~ancestor:(node [ "db1"; "seg1"; "cells"; "c1"; "robots" ])
           id))
    (refs_to "e2")

let test_instance_graph_ancestors () =
  let graph = graph_of (fig1 ()) in
  let r1 = node [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r1" ] in
  Alcotest.(check (list string))
    "root-first chain"
    [ "db1"; "db1/seg1"; "db1/seg1/cells"; "db1/seg1/cells/c1";
      "db1/seg1/cells/c1/robots" ]
    (List.map Node_id.to_resource (Graph.ancestors graph r1))

let test_instance_graph_subtree_refs () =
  let graph = graph_of (fig1 ()) in
  let refs_of steps =
    List.map Oid.to_string (Graph.subtree_refs graph (node steps))
  in
  Alcotest.(check (list string))
    "r1 refs" [ "effectors/e1"; "effectors/e2" ]
    (refs_of [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r1" ]);
  Alcotest.(check (list string))
    "c1 refs (dedup)" [ "effectors/e1"; "effectors/e2"; "effectors/e3" ]
    (refs_of [ "db1"; "seg1"; "cells"; "c1" ]);
  Alcotest.(check (list string))
    "c_objects: none" []
    (refs_of [ "db1"; "seg1"; "cells"; "c1"; "c_objects" ])

let test_instance_graph_counts () =
  let db = fig1 () in
  let graph = graph_of db in
  (* db(1) segs(2) relations(2) c1(1) cell_id(1) c_objects(1+3*3=10)
     robots(1+2*6=13) effector objects(3*3=9) = 39 *)
  check_int "node count" 39 (Graph.node_count graph);
  check_int "subtree of db is everything" 39
    (Graph.subtree_size graph (Graph.root graph))

let test_instance_graph_nodes_at_path () =
  let graph = graph_of (fig1 ()) in
  let c1 = Oid.make ~relation:"cells" ~key:"c1" in
  let at path = Graph.nodes_at_path graph c1 (Path.of_string path) in
  check_int "root is the object" 1 (List.length (at ""));
  check_int "robots HoLU" 1 (List.length (at "robots"));
  check_int "robot_id fans over members" 2 (List.length (at "robots.robot_id"));
  check_int "c_objects member BLUs" 3 (List.length (at "c_objects.obj_name"));
  check_int "effectors HoLUs" 2 (List.length (at "robots.effectors"));
  check_int "missing" 0 (List.length (at "nope"))

(* ------------------------------------------------------------------ Units *)

let test_units_roots () =
  let graph = graph_of (fig1 ()) in
  let r1 = node [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r1" ] in
  check_string "r1 is in the outer unit" "db1"
    (Node_id.to_resource (Units.unit_root graph r1));
  check_bool "in_outer_unit" true (Units.in_outer_unit graph r1);
  let e1_tool = node [ "db1"; "seg2"; "effectors"; "e1"; "tool" ] in
  check_string "tool of e1 is in inner unit e1" "db1/seg2/effectors/e1"
    (Node_id.to_resource (Units.unit_root graph e1_tool));
  check_bool "not outer" false (Units.in_outer_unit graph e1_tool)

let test_units_superunit_parents () =
  let graph = graph_of (fig1 ()) in
  let e1 = node [ "db1"; "seg2"; "effectors"; "e1" ] in
  (* Fig. 6: the superunit of effector e1 is db1 / seg2 / Relation effectors
     / effector e1 *)
  Alcotest.(check (list string))
    "parents of entry point e1" [ "db1"; "db1/seg2"; "db1/seg2/effectors" ]
    (List.map Node_id.to_resource (Units.superunit_parents graph ~root:e1))

let test_units_members_inner () =
  let graph = graph_of (fig1 ()) in
  let e1 = node [ "db1"; "seg2"; "effectors"; "e1" ] in
  Alcotest.(check (list string))
    "inner unit effector e1"
    [ "db1/seg2/effectors/e1"; "db1/seg2/effectors/e1/eff_id";
      "db1/seg2/effectors/e1/tool" ]
    (List.map Node_id.to_resource (Units.unit_members graph ~root:e1))

let test_units_members_outer_stop_at_entries () =
  let graph = graph_of (fig1 ()) in
  let members = Units.unit_members graph ~root:(Graph.root graph) in
  let resources = List.map Node_id.to_resource members in
  check_bool "contains relation effectors" true
    (List.mem "db1/seg2/effectors" resources);
  check_bool "does not descend into effector e1" false
    (List.mem "db1/seg2/effectors/e1" resources);
  check_bool "contains the ref BLU holder" true
    (List.mem "db1/seg1/cells/c1/robots/r1/effectors" resources)

let test_units_entry_points_below () =
  let graph = graph_of (fig1 ()) in
  let below steps =
    List.map Node_id.to_resource (Units.entry_points_below graph (node steps))
  in
  Alcotest.(check (list string))
    "below r1" [ "db1/seg2/effectors/e1"; "db1/seg2/effectors/e2" ]
    (below [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r1" ]);
  Alcotest.(check (list string))
    "below c1 (all three)"
    [ "db1/seg2/effectors/e1"; "db1/seg2/effectors/e2";
      "db1/seg2/effectors/e3" ]
    (below [ "db1"; "seg1"; "cells"; "c1" ]);
  Alcotest.(check (list string))
    "below an effector: none" []
    (below [ "db1"; "seg2"; "effectors"; "e1" ])

let test_units_disjoint_have_no_inner () =
  (* A database without references has a single (outer) unit. *)
  let db =
    Workload.Generator.deep
      { Workload.Generator.default_deep with share = false; parts = 0 }
  in
  let graph = graph_of db in
  let members = Units.unit_members graph ~root:(Graph.root graph) in
  check_int "outer unit covers everything" (Graph.node_count graph)
    (List.length members)

(* ------------------------------------------------------------ Query_graph *)

let stats_for db relation =
  match Nf2.Database.relation db relation with
  | Some store -> Nf2.Statistics.compute store
  | None -> Nf2.Statistics.empty relation

let test_query_graph_fine_when_cheap () =
  let db = fig1 () in
  let catalog = Nf2.Database.catalog db in
  let access =
    Colock.Access.make
      ~predicate:(Path.of_string "cell_id")
      ~target:(Path.of_string "robots.robot_id")
      Colock.Access.Update "cells"
  in
  let choice =
    Colock.Query_graph.plan_access ~threshold:10 catalog
      ~stats:(stats_for db) access
  in
  (match choice.Colock.Query_graph.granule with
   | Colock.Query_graph.Subtree path ->
     check_string "locks at target level" "robots.robot_id"
       (Path.to_string path)
   | Colock.Query_graph.Whole_object | Colock.Query_graph.Whole_relation ->
     Alcotest.fail "expected fine granule");
  check_bool "X mode" true (Mode.equal choice.Colock.Query_graph.mode Mode.X);
  check_bool "no anticipated escalation" false
    choice.Colock.Query_graph.anticipated_escalation

let test_query_graph_escalates_when_populous () =
  let db = Workload.Figure1.database ~c_objects:100 () in
  let catalog = Nf2.Database.catalog db in
  let access =
    Colock.Access.make
      ~predicate:(Path.of_string "cell_id")
      ~target:(Path.of_string "c_objects.obj_name")
      Colock.Access.Read "cells"
  in
  let choice =
    Colock.Query_graph.plan_access ~threshold:10 catalog
      ~stats:(stats_for db) access
  in
  (* 100 members exceed the threshold: anticipate by locking the c_objects
     HoLU (1 lock per object) instead of 100 BLUs. *)
  (match choice.Colock.Query_graph.granule with
   | Colock.Query_graph.Subtree path ->
     check_string "escalated to collection" "c_objects" (Path.to_string path)
   | Colock.Query_graph.Whole_object | Colock.Query_graph.Whole_relation ->
     Alcotest.fail "expected c_objects subtree");
  check_bool "escalation anticipated" true
    choice.Colock.Query_graph.anticipated_escalation;
  check_bool "finest estimate reflects members" true
    (choice.Colock.Query_graph.finest_estimate >= 100.0)

let test_query_graph_whole_relation_for_scan () =
  let db =
    Workload.Generator.manufacturing
      { Workload.Generator.default_manufacturing with cells = 50 }
  in
  let catalog = Nf2.Database.catalog db in
  let access = Colock.Access.make Colock.Access.Read "cells" in
  let choice =
    Colock.Query_graph.plan_access ~threshold:10 catalog
      ~stats:(stats_for db) access
  in
  match choice.Colock.Query_graph.granule with
  | Colock.Query_graph.Whole_relation -> ()
  | Colock.Query_graph.Whole_object | Colock.Query_graph.Subtree _ ->
    Alcotest.fail "a 50-object scan should lock the relation"

let test_query_graph_object_level () =
  let db = fig1 () in
  let catalog = Nf2.Database.catalog db in
  let access =
    Colock.Access.make ~predicate:(Path.of_string "cell_id")
      Colock.Access.Update "cells"
  in
  let choice =
    Colock.Query_graph.plan_access ~threshold:10 catalog
      ~stats:(stats_for db) access
  in
  match choice.Colock.Query_graph.granule with
  | Colock.Query_graph.Whole_object -> ()
  | Colock.Query_graph.Whole_relation | Colock.Query_graph.Subtree _ ->
    Alcotest.fail "whole-object expected for a keyed whole-object access"

let test_query_graph_estimate_at () =
  let db = Workload.Figure1.database ~c_objects:7 () in
  let stats = stats_for db "cells" in
  let schema = Workload.Figure1.cells_schema in
  Alcotest.(check (float 0.001))
    "c_objects HoLU level: 1 per object" 1.0
    (Colock.Query_graph.estimate_at stats ~objects:1.0 schema
       (Path.of_string "c_objects"));
  Alcotest.(check (float 0.001))
    "obj_name level: 7 per object" 7.0
    (Colock.Query_graph.estimate_at stats ~objects:1.0 schema
       (Path.of_string "c_objects.obj_name"));
  (* locking at the per-robot effectors HoLU: one lock per robot *)
  Alcotest.(check (float 0.001))
    "effectors HoLU level: 2 per object" 2.0
    (Colock.Query_graph.estimate_at stats ~objects:1.0 schema
       (Path.of_string "robots.effectors"))

let test_query_graph_build () =
  let db = fig1 () in
  let catalog = Nf2.Database.catalog db in
  let accesses =
    [ Colock.Access.make ~predicate:(Path.of_string "cell_id")
        ~target:(Path.of_string "c_objects")
        Colock.Access.Read "cells";
      Colock.Access.make ~predicate:(Path.of_string "eff_id")
        Colock.Access.Update "effectors" ]
  in
  let query_graph =
    Colock.Query_graph.build ~threshold:10 catalog ~stats:(stats_for db)
      accesses
  in
  check_int "two choices" 2
    (List.length query_graph.Colock.Query_graph.choices)

(* ------------------------------------------------------------- Escalation *)

let protocol_for db =
  let graph = graph_of db in
  let table = Table.create () in
  (graph, table, Colock.Protocol.create graph table)

let acquire_exn protocol ~txn node mode =
  match Colock.Protocol.acquire protocol ~txn node mode with
  | Colock.Protocol.Acquired _ -> ()
  | Colock.Protocol.Blocked _ -> Alcotest.fail "unexpected block"

let test_escalation_triggers () =
  let db = Workload.Figure1.database ~c_objects:6 () in
  let graph, table, protocol = protocol_for db in
  let c1 = Option.get (Graph.object_node graph (Oid.make ~relation:"cells" ~key:"c1")) in
  let holu = Node_id.child c1 "c_objects" in
  let members = (Graph.node_exn graph holu).Graph.children in
  check_int "six members" 6 (List.length members);
  List.iter (fun member -> acquire_exn protocol ~txn:1 member Mode.S) members;
  (match
     Colock.Escalation.maybe_escalate protocol ~txn:1 ~threshold:4 ~parent:holu
   with
   | Colock.Escalation.Escalated { mode; released_children; _ } ->
     check_bool "escalated to S" true (Mode.equal mode Mode.S);
     check_int "released six" 6 released_children
   | Colock.Escalation.Escalation_blocked _ | Colock.Escalation.Not_needed ->
     Alcotest.fail "escalation expected");
  check_bool "holu now S" true
    (Mode.equal (Table.held table ~txn:1 ~resource:(Node_id.to_resource holu)) Mode.S);
  List.iter
    (fun member ->
      check_bool "member released" true
        (Mode.equal
           (Table.held table ~txn:1 ~resource:(Node_id.to_resource member))
           Mode.NL))
    members;
  check_int "stats counted" 1
    (Table.stats table).Lockmgr.Lock_stats.escalations

let test_escalation_not_needed () =
  let db = Workload.Figure1.database ~c_objects:6 () in
  let graph, _table, protocol = protocol_for db in
  let c1 = Option.get (Graph.object_node graph (Oid.make ~relation:"cells" ~key:"c1")) in
  let holu = Node_id.child c1 "c_objects" in
  let members = (Graph.node_exn graph holu).Graph.children in
  (match members with
   | first :: _ -> acquire_exn protocol ~txn:1 first Mode.S
   | [] -> Alcotest.fail "members expected");
  match
    Colock.Escalation.maybe_escalate protocol ~txn:1 ~threshold:4 ~parent:holu
  with
  | Colock.Escalation.Not_needed -> ()
  | Colock.Escalation.Escalated _ | Colock.Escalation.Escalation_blocked _ ->
    Alcotest.fail "below threshold: no escalation"

let test_escalation_blocked_by_other_txn () =
  let db = Workload.Figure1.database ~c_objects:6 () in
  let graph, _table, protocol = protocol_for db in
  let c1 = Option.get (Graph.object_node graph (Oid.make ~relation:"cells" ~key:"c1")) in
  let holu = Node_id.child c1 "c_objects" in
  let members = (Graph.node_exn graph holu).Graph.children in
  (* T2 reads the last member first: its IS on the HoLU blocks T1's X
     escalation while leaving the other members free for T1. *)
  (match List.rev members with
   | last :: _ -> acquire_exn protocol ~txn:2 last Mode.S
   | [] -> Alcotest.fail "members expected");
  (match members with
   | m1 :: m2 :: m3 :: _ ->
     List.iter (fun member -> acquire_exn protocol ~txn:1 member Mode.X)
       [ m1; m2; m3 ]
   | _ -> Alcotest.fail "members expected");
  match
    Colock.Escalation.maybe_escalate protocol ~txn:1 ~threshold:2 ~parent:holu
  with
  | Colock.Escalation.Escalation_blocked { blockers } ->
    Alcotest.(check (list int)) "blocked by T2" [ 2 ] blockers
  | Colock.Escalation.Escalated _ | Colock.Escalation.Not_needed ->
    Alcotest.fail "escalation should block"

let test_deescalation () =
  let db = Workload.Figure1.database ~c_objects:6 () in
  let graph, table, protocol = protocol_for db in
  let c1 = Option.get (Graph.object_node graph (Oid.make ~relation:"cells" ~key:"c1")) in
  let holu = Node_id.child c1 "c_objects" in
  let members = (Graph.node_exn graph holu).Graph.children in
  acquire_exn protocol ~txn:1 holu Mode.X;
  let keep =
    match members with
    | first :: _ -> [ (first, Mode.X) ]
    | [] -> Alcotest.fail "members expected"
  in
  (match Colock.Escalation.deescalate protocol ~txn:1 holu ~keep with
   | Ok _grants -> ()
   | Error _ -> Alcotest.fail "de-escalation should succeed");
  check_bool "holu weakened to IX" true
    (Mode.equal (Table.held table ~txn:1 ~resource:(Node_id.to_resource holu)) Mode.IX);
  (* another transaction can now lock a different member *)
  match members with
  | _first :: second :: _ -> (
    match Colock.Protocol.try_acquire protocol ~txn:2 second Mode.S with
    | Colock.Protocol.Acquired _ -> ()
    | Colock.Protocol.Blocked _ -> Alcotest.fail "sibling should be free")
  | _ -> Alcotest.fail "two members expected"

let () =
  Alcotest.run "colock"
    [ ("node_id",
       [ Alcotest.test_case "resource" `Quick test_node_id_resource;
         Alcotest.test_case "parent" `Quick test_node_id_parent;
         Alcotest.test_case "ancestry" `Quick test_node_id_ancestry;
         Alcotest.test_case "escaping" `Quick test_node_id_escaping ]);
      ("object_graph",
       [ Alcotest.test_case "figure 5 structure" `Quick
           test_object_graph_figure5_structure;
         Alcotest.test_case "counts" `Quick test_object_graph_counts;
         Alcotest.test_case "effectors" `Quick test_object_graph_effectors;
         Alcotest.test_case "reference nodes" `Quick
           test_object_graph_reference_nodes;
         Alcotest.test_case "levels" `Quick test_object_graph_levels;
         Alcotest.test_case "find_path" `Quick test_object_graph_find_path;
         Alcotest.test_case "derivation rules" `Quick
           test_object_graph_derivation_rules ]);
      ("instance_graph",
       [ Alcotest.test_case "navigation" `Quick test_instance_graph_navigation;
         Alcotest.test_case "members" `Quick test_instance_graph_members;
         Alcotest.test_case "kinds" `Quick test_instance_graph_kinds;
         Alcotest.test_case "entry points" `Quick
           test_instance_graph_entry_points;
         Alcotest.test_case "referencers" `Quick
           test_instance_graph_referencers;
         Alcotest.test_case "ancestors" `Quick test_instance_graph_ancestors;
         Alcotest.test_case "subtree refs" `Quick
           test_instance_graph_subtree_refs;
         Alcotest.test_case "counts" `Quick test_instance_graph_counts;
         Alcotest.test_case "nodes_at_path" `Quick
           test_instance_graph_nodes_at_path ]);
      ("units",
       [ Alcotest.test_case "unit roots" `Quick test_units_roots;
         Alcotest.test_case "superunit parents" `Quick
           test_units_superunit_parents;
         Alcotest.test_case "inner unit members" `Quick
           test_units_members_inner;
         Alcotest.test_case "outer unit stops at entries" `Quick
           test_units_members_outer_stop_at_entries;
         Alcotest.test_case "entry points below" `Quick
           test_units_entry_points_below;
         Alcotest.test_case "disjoint: no inner units" `Quick
           test_units_disjoint_have_no_inner ]);
      ("query_graph",
       [ Alcotest.test_case "fine when cheap" `Quick
           test_query_graph_fine_when_cheap;
         Alcotest.test_case "escalates when populous" `Quick
           test_query_graph_escalates_when_populous;
         Alcotest.test_case "whole relation for scan" `Quick
           test_query_graph_whole_relation_for_scan;
         Alcotest.test_case "object level" `Quick test_query_graph_object_level;
         Alcotest.test_case "estimate_at" `Quick test_query_graph_estimate_at;
         Alcotest.test_case "build" `Quick test_query_graph_build ]);
      ("escalation",
       [ Alcotest.test_case "triggers" `Quick test_escalation_triggers;
         Alcotest.test_case "not needed" `Quick test_escalation_not_needed;
         Alcotest.test_case "blocked" `Quick
           test_escalation_blocked_by_other_txn;
         Alcotest.test_case "de-escalation" `Quick test_deescalation ]) ]
