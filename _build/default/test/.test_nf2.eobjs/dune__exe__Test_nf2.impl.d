test/test_nf2.ml: Alcotest Format List Nf2 Option Result Workload
