test/test_parallel.ml: Alcotest Atomic Colock Domain List Lockmgr Option Workload
