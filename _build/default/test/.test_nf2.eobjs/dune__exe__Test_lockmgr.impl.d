test/test_lockmgr.ml: Alcotest List Lockmgr Printf QCheck QCheck_alcotest
