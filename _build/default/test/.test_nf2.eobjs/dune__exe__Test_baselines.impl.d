test/test_baselines.ml: Alcotest Authz Baselines Colock List Lockmgr Nf2 Option String Workload
