test/test_nested.ml: Alcotest Authz Baselines Colock Fun List Lockmgr Nf2 Option Printf String Workload
