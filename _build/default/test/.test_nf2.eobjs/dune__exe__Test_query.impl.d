test/test_query.ml: Alcotest Authz Colock Format List Lockmgr Nf2 Option Query String Workload
