test/test_nf2.mli:
