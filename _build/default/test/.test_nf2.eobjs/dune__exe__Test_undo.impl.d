test/test_undo.ml: Alcotest Colock Format List Lockmgr Nf2 Option Query String Workload
