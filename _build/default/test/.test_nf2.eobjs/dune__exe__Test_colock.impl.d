test/test_colock.ml: Alcotest Colock List Lockmgr Nf2 Option String Workload
