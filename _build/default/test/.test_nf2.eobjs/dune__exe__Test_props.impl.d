test/test_props.ml: Alcotest Array Authz Colock Filename Format Fun Hashtbl Lazy List Lockmgr Nf2 Option Printf QCheck QCheck_alcotest Query Sim String Sys Txn Workload
