test/test_colock.mli:
