test/test_index.ml: Alcotest Colock Format List Lockmgr Nf2 Query Workload
