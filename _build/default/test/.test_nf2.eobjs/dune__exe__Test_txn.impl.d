test/test_txn.ml: Alcotest Authz Colock Filename Format List Lockmgr Nf2 Option String Txn Workload
