test/test_session.ml: Alcotest Format List Lockmgr Nf2 Option Query Session String Txn Workload
