test/test_soak.ml: Alcotest Colock List Lockmgr Nf2 Option Sim Workload
