test/test_dml.ml: Alcotest Colock Format List Lockmgr Nf2 Option Query Workload
