test/test_undo.mli:
