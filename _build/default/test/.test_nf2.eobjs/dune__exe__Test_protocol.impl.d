test/test_protocol.ml: Alcotest Array Authz Colock Format Hashtbl List Lockmgr Nf2 Option Printf QCheck QCheck_alcotest String Workload
