test/test_model.ml: Alcotest Colock List Map Nf2 Option Printf QCheck QCheck_alcotest Session String Workload
