test/test_sim.ml: Alcotest Authz Baselines Colock List Lockmgr Option Sim Workload
