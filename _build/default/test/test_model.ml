(* Model-based testing: random sequences of transactions (updates, inserts,
   deletes, each randomly committed or aborted) run through the Session
   façade, while a pure shadow model replays only the committed ones. After
   every transaction the database must equal the model exactly, and the
   instance graph must stay consistent with the database. *)

module Path = Nf2.Path
module Oid = Nf2.Oid
module Value = Nf2.Value
module String_map = Map.Make (String)

type model = Value.t String_map.t String_map.t  (* relation -> key -> value *)

let model_of_db db : model =
  List.fold_left
    (fun model store ->
      String_map.add
        (Nf2.Relation.name store)
        (List.fold_left
           (fun objects (key, value) -> String_map.add key value objects)
           String_map.empty (Nf2.Relation.objects store))
        model)
    String_map.empty
    (Nf2.Database.relations db)

let model_equal (a : model) (b : model) =
  String_map.equal (String_map.equal Value.equal) a b

(* one operation of a transaction *)
type op =
  | Set_trajectory of int * string  (* robot picked by parity, new text *)
  | Insert_cell of int
  | Delete_cell of int

type txn_spec = { ops : op list; commits : bool }

let op_gen =
  QCheck.Gen.(
    oneof
      [ map2 (fun robot text -> Set_trajectory (robot, text))
          (int_range 0 1)
          (oneofl [ "alpha"; "beta"; "gamma" ]);
        map (fun n -> Insert_cell n) (int_range 2 5);
        map (fun n -> Delete_cell n) (int_range 1 5) ])

let txn_gen =
  QCheck.Gen.(
    map2
      (fun ops commits -> { ops; commits })
      (list_size (int_range 1 4) op_gen)
      bool)

let print_op = function
  | Set_trajectory (robot, text) -> Printf.sprintf "set r%d %s" (robot + 1) text
  | Insert_cell n -> Printf.sprintf "ins c%d" n
  | Delete_cell n -> Printf.sprintf "del c%d" n

let print_txn { ops; commits } =
  Printf.sprintf "[%s]%s"
    (String.concat "," (List.map print_op ops))
    (if commits then "+" else "-")

let fresh_cell key =
  Workload.Figure1.cell ~key
    ~objects:[ Workload.Figure1.cell_object ~id:1 ~name:"m" ]
    ~robots:
      [ Workload.Figure1.robot ~key:"r1" ~trajectory:"t0" ~effectors:[ "e1" ] ]

(* Apply one op through the session (ignore expected failures like missing
   keys); mirror successful ops in the candidate model. *)
let apply_op session txn model op =
  match op with
  | Set_trajectory (robot, text) -> (
    let robot_key = Printf.sprintf "r%d" (robot + 1) in
    let query =
      Printf.sprintf
        "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND \
         r.robot_id = '%s' FOR UPDATE"
        robot_key
    in
    let transform value =
      match value with
      | Value.Tuple fields ->
        Value.Tuple
          (List.map
             (fun (name, sub) ->
               if String.equal name "trajectory" then (name, Value.Str text)
               else (name, sub))
             fields)
      | other -> other
    in
    match Session.update session txn query transform with
    | Ok _count -> (
      (* mirror in the model when cell c1 still exists *)
      match String_map.find_opt "cells" model with
      | None -> model
      | Some cells -> (
        match String_map.find_opt "c1" cells with
        | None -> model
        | Some cell ->
          let updated =
            match cell with
            | Value.Tuple fields ->
              Value.Tuple
                (List.map
                   (fun (name, sub) ->
                     if String.equal name "robots" then
                       match sub with
                       | Value.List robots ->
                         ( name,
                           Value.List
                             (List.map
                                (fun robot_value ->
                                  match robot_value with
                                  | Value.Tuple robot_fields
                                    when List.exists
                                           (fun (f, v) ->
                                             String.equal f "robot_id"
                                             && Value.equal v
                                                  (Value.Str robot_key))
                                           robot_fields ->
                                    transform robot_value
                                  | other -> other)
                                robots) )
                       | other -> (name, other)
                     else (name, sub))
                   fields)
            | other -> other
          in
          String_map.add "cells" (String_map.add "c1" updated cells) model))
    | Error _ -> model)
  | Insert_cell n -> (
    let key = Printf.sprintf "c%d" n in
    match Session.insert session txn "cells" (fresh_cell key) with
    | Ok _oid ->
      let cells =
        Option.value ~default:String_map.empty
          (String_map.find_opt "cells" model)
      in
      String_map.add "cells" (String_map.add key (fresh_cell key) cells) model
    | Error _ -> model)
  | Delete_cell n -> (
    let key = Printf.sprintf "c%d" n in
    match Session.delete session txn (Oid.make ~relation:"cells" ~key) with
    | Ok () -> (
      match String_map.find_opt "cells" model with
      | None -> model
      | Some cells -> String_map.add "cells" (String_map.remove key cells) model)
    | Error _ -> model)

let graph_consistent session =
  (* every database object has a graph node and vice versa *)
  let db = Session.database session in
  let graph = Session.graph session in
  List.for_all
    (fun store ->
      let relation = Nf2.Relation.name store in
      List.for_all
        (fun key ->
          Option.is_some
            (Colock.Instance_graph.object_node graph (Oid.make ~relation ~key)))
        (Nf2.Relation.keys store))
    (Nf2.Database.relations db)

let prop_session_matches_model =
  QCheck.Test.make ~name:"random committed work matches the shadow model"
    ~count:120
    (QCheck.make
       ~print:(fun txns -> String.concat " " (List.map print_txn txns))
       QCheck.Gen.(list_size (int_range 1 6) txn_gen))
    (fun txns ->
      let session = Session.create (Workload.Figure1.database ()) in
      Session.set_library_read_only session ~relation:"effectors";
      let committed_model = ref (model_of_db (Session.database session)) in
      List.for_all
        (fun spec ->
          let txn = Session.begin_txn session in
          let candidate =
            List.fold_left
              (fun model op -> apply_op session txn model op)
              !committed_model spec.ops
          in
          if spec.commits then begin
            Session.commit session txn;
            committed_model := candidate
          end
          else begin
            match Session.abort session txn with
            | Ok _count -> ()
            | Error _ -> Alcotest.fail "rollback failed"
          end;
          model_equal !committed_model (model_of_db (Session.database session))
          && graph_consistent session
          && Nf2.Database.check_ref_integrity (Session.database session) = [])
        txns)

let () =
  Alcotest.run "model"
    [ ("shadow",
       [ QCheck_alcotest.to_alcotest prop_session_matches_model ]) ]
