(* Tests for the baseline techniques of §3 and their failure modes. *)

module Path = Nf2.Path
module Oid = Nf2.Oid
module Mode = Lockmgr.Lock_mode
module Table = Lockmgr.Lock_table
module Node_id = Colock.Node_id
module Graph = Colock.Instance_graph

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fig1 ?c_objects () = Workload.Figure1.database ?c_objects ()
let c1 = Oid.make ~relation:"cells" ~key:"c1"
let e2 = Oid.make ~relation:"effectors" ~key:"e2"

let resource_of request =
  Node_id.to_resource request.Baselines.Technique.node

(* ------------------------------------------------------------ Whole_object *)

let test_whole_object_plan () =
  let graph = Graph.build (fig1 ()) in
  let plan = Baselines.Whole_object.plan graph ~oid:c1 Mode.X in
  let resources = List.map resource_of plan in
  (* c1 as a whole plus the three referenced effectors, with chains *)
  check_bool "locks c1" true (List.mem "db1/seg1/cells/c1" resources);
  check_bool "locks e1" true (List.mem "db1/seg2/effectors/e1" resources);
  check_bool "locks e2" true (List.mem "db1/seg2/effectors/e2" resources);
  check_bool "locks e3" true (List.mem "db1/seg2/effectors/e3" resources);
  (* db, seg1, cells, c1, seg2, effectors, e1, e2, e3 = 9 *)
  check_int "nine requests" 9 (List.length plan);
  let x_modes =
    List.filter
      (fun request -> Mode.equal request.Baselines.Technique.mode Mode.X)
      plan
  in
  check_int "four X locks (c1 + 3 effectors)" 4 (List.length x_modes)

let test_whole_object_serializes_q1_q2 () =
  (* The §3.2.1 problem: Q1 (read parts of c1) and Q2 (update another part)
     conflict under whole-object locking. *)
  let graph = Graph.build (fig1 ()) in
  let table = Table.create () in
  (match
     Baselines.Technique.acquire table ~txn:1
       (Baselines.Whole_object.plan graph ~oid:c1 Mode.S)
   with
   | Baselines.Technique.Acquired _ -> ()
   | Baselines.Technique.Blocked _ -> Alcotest.fail "Q1 should acquire");
  match
    Baselines.Technique.acquire table ~txn:2 ~wait:false
      (Baselines.Whole_object.plan graph ~oid:c1 Mode.X)
  with
  | Baselines.Technique.Blocked _ -> ()
  | Baselines.Technique.Acquired _ ->
    Alcotest.fail "whole-object locking must serialize Q1/Q2"

let test_whole_object_count_grows_with_sharing () =
  let few = Graph.build (Workload.Generator.shared_effector ~robots:2) in
  let many = Graph.build (Workload.Generator.shared_effector ~robots:2) in
  let cell = Oid.make ~relation:"cells" ~key:"c1" in
  check_int "same db, same count"
    (Baselines.Whole_object.lock_count few ~oid:cell Mode.X)
    (Baselines.Whole_object.lock_count many ~oid:cell Mode.X)

(* ------------------------------------------------------------- Tuple_level *)

let test_tuple_level_leaf_tuples () =
  let graph = Graph.build (fig1 ~c_objects:3 ()) in
  let c1_node = Option.get (Graph.object_node graph c1) in
  let leaves = Baselines.Tuple_level.leaf_tuples graph c1_node in
  (* 3 c_objects members + 2 robot members + the uncovered cell_id BLU *)
  check_int "six leaf units" 6 (List.length leaves)

let test_tuple_level_plan_explodes () =
  let small = Graph.build (fig1 ~c_objects:3 ()) in
  let large = Graph.build (fig1 ~c_objects:100 ()) in
  let count graph =
    Baselines.Tuple_level.lock_count graph ~oid:c1 Mode.S
  in
  let small_count = count small in
  let large_count = count large in
  check_bool "lock count grows with members" true
    (large_count > small_count + 90);
  (* the proposed technique locks the object in 4-7 requests regardless *)
  check_bool "hundreds of requests" true (large_count >= 100)

let test_tuple_level_target () =
  let graph = Graph.build (fig1 ~c_objects:3 ()) in
  let plan =
    Baselines.Tuple_level.plan graph ~oid:c1 ~target:(Path.of_string "c_objects")
      Mode.S
  in
  let data_locks =
    List.filter
      (fun request -> Mode.equal request.Baselines.Technique.mode Mode.S)
      plan
  in
  check_int "three member tuples" 3 (List.length data_locks)

let test_tuple_level_follows_refs () =
  let graph = Graph.build (fig1 ()) in
  let plan =
    Baselines.Tuple_level.plan graph ~oid:c1 ~target:(Path.of_string "robots")
      Mode.X
  in
  let resources = List.map resource_of plan in
  check_bool "locks the shared effectors too" true
    (List.mem "db1/seg2/effectors/e2" resources)

let test_tuple_level_concurrent_on_disjoint_parts () =
  (* Fine granules do allow Q1 || Q2 — that is their selling point. *)
  let graph = Graph.build (fig1 ()) in
  let table = Table.create () in
  (match
     Baselines.Technique.acquire table ~txn:1
       (Baselines.Tuple_level.plan graph ~oid:c1
          ~target:(Path.of_string "c_objects") Mode.S)
   with
   | Baselines.Technique.Acquired _ -> ()
   | Baselines.Technique.Blocked _ -> Alcotest.fail "Q1 should acquire");
  match
    Baselines.Technique.acquire table ~txn:2 ~wait:false
      (Baselines.Tuple_level.plan graph ~oid:c1 ~target:(Path.of_string "robots")
         Mode.X)
  with
  | Baselines.Technique.Acquired _ -> ()
  | Baselines.Technique.Blocked _ ->
    Alcotest.fail "tuple-level locking should allow Q1 || Q2"

(* ---------------------------------------------------------------- Sysr_dag *)

let test_sysr_all_parents_cost_grows_with_sharing () =
  let plan_size robots =
    let graph = Graph.build (Workload.Generator.shared_effector ~robots) in
    let e1 = Oid.make ~relation:"effectors" ~key:"e1" in
    List.length (Baselines.Sysr_dag.plan_exclusive_all_parents graph ~oid:e1)
  in
  let at_2 = plan_size 2 in
  let at_32 = plan_size 32 in
  check_bool "plan grows with sharing degree" true (at_32 > at_2 + 25);
  (* the proposed technique always needs 4 requests for this access *)
  check_bool "worse than proposed" true (at_32 > 4)

let test_sysr_all_parents_locks_referencers () =
  let graph = Graph.build (fig1 ()) in
  let plan = Baselines.Sysr_dag.plan_exclusive_all_parents graph ~oid:e2 in
  let resources = List.map resource_of plan in
  (* e2 is shared by r1 and r2: both chains must be IX locked *)
  check_bool "locks r1's ref chain" true
    (List.exists
       (fun resource ->
         String.length resource >= 34
         && String.equal (String.sub resource 0 34) "db1/seg1/cells/c1/robots/r1/effect")
       resources);
  check_bool "locks robots chain" true
    (List.mem "db1/seg1/cells/c1/robots" resources);
  check_bool "X on e2 itself" true
    (List.exists
       (fun request ->
         Mode.equal request.Baselines.Technique.mode Mode.X
         && String.equal (resource_of request) "db1/seg2/effectors/e2")
       plan)

let test_sysr_parent_enumeration_visits () =
  let small = Graph.build (fig1 ~c_objects:2 ()) in
  let large = Graph.build (fig1 ~c_objects:50 ()) in
  check_bool "scan cost grows with the database" true
    (Baselines.Sysr_dag.parent_enumeration_visits large
     > Baselines.Sysr_dag.parent_enumeration_visits small)

let test_sysr_naive_hidden_conflict () =
  (* The §3.2.2 anomaly: T1 X-locks robot r1 hierarchically (believing the
     referenced e2 is implicitly covered); T2 X-locks robot r2 the same way.
     The lock table sees no conflict, but both now "own" e2. *)
  let graph = Graph.build (fig1 ()) in
  let table = Table.create () in
  let r1 = Option.get (Node_id.of_steps [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r1" ]) in
  let r2 = Option.get (Node_id.of_steps [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r2" ]) in
  (match
     Baselines.Technique.acquire table ~txn:1
       (Baselines.Sysr_dag.plan_hierarchical_naive graph r1 Mode.X)
   with
   | Baselines.Technique.Acquired _ -> ()
   | Baselines.Technique.Blocked _ -> Alcotest.fail "T1 should acquire");
  (match
     Baselines.Technique.acquire table ~txn:2
       (Baselines.Sysr_dag.plan_hierarchical_naive graph r2 Mode.X)
   with
   | Baselines.Technique.Acquired _ -> ()
   | Baselines.Technique.Blocked _ ->
     Alcotest.fail "T2 acquires too: the conflict is invisible");
  let conflicts = Baselines.Sysr_dag.hidden_conflicts graph table ~txns:[ 1; 2 ] in
  check_bool "hidden conflict detected by the audit" true (conflicts <> []);
  check_bool "conflict is on e2" true
    (List.exists
       (fun { Baselines.Sysr_dag.at; _ } ->
         String.equal (Node_id.to_resource at) "db1/seg2/effectors/e2"
         || Node_id.is_ancestor
              ~ancestor:(Option.get (Node_id.of_steps [ "db1"; "seg2"; "effectors"; "e2" ]))
              at)
       conflicts)

let test_proposed_has_no_hidden_conflicts () =
  (* Same scenario through the paper's protocol: no hidden conflicts, under
     either rule. *)
  let db = fig1 () in
  let graph = Graph.build db in
  let run rule restrict =
    let table = Table.create () in
    let rights = Authz.Rights.create () in
    let protocol = Colock.Protocol.create ~rule ~rights graph table in
    if restrict then begin
      Authz.Rights.revoke_modify rights ~txn:1 ~relation:"effectors";
      Authz.Rights.revoke_modify rights ~txn:2 ~relation:"effectors"
    end;
    let r1 = Option.get (Node_id.of_steps [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r1" ]) in
    let r2 = Option.get (Node_id.of_steps [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r2" ]) in
    let acquire txn node =
      match Colock.Protocol.try_acquire protocol ~txn node Mode.X with
      | Colock.Protocol.Acquired _ -> true
      | Colock.Protocol.Blocked _ ->
        (* detected conflict: the transaction aborts (or waits) and never
           reaches its data — only completed lock phases are audited *)
        let (_ : Table.grant list) = Table.release_all table ~txn in
        false
    in
    let first = acquire 1 r1 in
    let second = acquire 2 r2 in
    let conflicts =
      Baselines.Sysr_dag.hidden_conflicts ~rights graph table ~txns:[ 1; 2 ]
    in
    (first, second, conflicts)
  in
  (* Rule 4: T2 blocks on e2 (no hidden conflict, detected conflict). *)
  let first, second, conflicts = run Colock.Protocol.Rule_4 false in
  check_bool "rule 4: T1 acquired" true first;
  check_bool "rule 4: T2 blocked" false second;
  check_int "rule 4: no hidden conflicts" 0 (List.length conflicts);
  (* Rule 4': both run, still nothing hidden (both only read the library). *)
  let first, second, conflicts = run Colock.Protocol.Rule_4_prime true in
  check_bool "rule 4': T1 acquired" true first;
  check_bool "rule 4': T2 acquired" true second;
  check_int "rule 4': no hidden conflicts" 0 (List.length conflicts)

let test_proposed_beats_all_parents_on_cost () =
  (* E5 shape: X one effector shared by k robots. Proposed: constant 4
     requests. All-parents DAG: grows linearly. *)
  let graph = Graph.build (Workload.Generator.shared_effector ~robots:16) in
  let table = Table.create () in
  let protocol = Colock.Protocol.create graph table in
  let e1 = Oid.make ~relation:"effectors" ~key:"e1" in
  let entry = Option.get (Graph.object_node graph e1) in
  let steps = Colock.Protocol.plan protocol ~txn:1 entry Mode.X in
  check_int "proposed: 4 requests" 4 (List.length steps);
  let naive = Baselines.Sysr_dag.plan_exclusive_all_parents graph ~oid:e1 in
  check_bool "naive needs an order of magnitude more" true
    (List.length naive > 20)

let () =
  Alcotest.run "baselines"
    [ ("whole_object",
       [ Alcotest.test_case "plan closure" `Quick test_whole_object_plan;
         Alcotest.test_case "serializes Q1/Q2" `Quick
           test_whole_object_serializes_q1_q2;
         Alcotest.test_case "deterministic count" `Quick
           test_whole_object_count_grows_with_sharing ]);
      ("tuple_level",
       [ Alcotest.test_case "leaf tuples" `Quick test_tuple_level_leaf_tuples;
         Alcotest.test_case "plan explodes" `Quick
           test_tuple_level_plan_explodes;
         Alcotest.test_case "target scoping" `Quick test_tuple_level_target;
         Alcotest.test_case "follows refs" `Quick test_tuple_level_follows_refs;
         Alcotest.test_case "concurrent on disjoint parts" `Quick
           test_tuple_level_concurrent_on_disjoint_parts ]);
      ("sysr_dag",
       [ Alcotest.test_case "all-parents cost grows" `Quick
           test_sysr_all_parents_cost_grows_with_sharing;
         Alcotest.test_case "all-parents locks referencers" `Quick
           test_sysr_all_parents_locks_referencers;
         Alcotest.test_case "parent enumeration visits" `Quick
           test_sysr_parent_enumeration_visits;
         Alcotest.test_case "naive hidden conflict" `Quick
           test_sysr_naive_hidden_conflict;
         Alcotest.test_case "proposed has none" `Quick
           test_proposed_has_no_hidden_conflicts;
         Alcotest.test_case "proposed beats all-parents cost" `Quick
           test_proposed_beats_all_parents_on_cost ]) ]
