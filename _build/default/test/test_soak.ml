(* Soak tests: larger databases and workloads, asserting global invariants
   end to end (everything commits, the lock table drains, plans stay sound
   at scale, determinism holds across techniques). *)

module Mode = Lockmgr.Lock_mode
module Table = Lockmgr.Lock_table
module Graph = Colock.Instance_graph
module Protocol = Colock.Protocol
module Oid = Nf2.Oid

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let big_db () =
  Workload.Generator.manufacturing
    { Workload.Generator.cells = 24; objects_per_cell = 50;
      robots_per_cell = 6; effectors = 20; effectors_per_robot = 3; seed = 3 }

let test_big_graph_builds () =
  let db = big_db () in
  let graph = Graph.build db in
  (* db + 2 segs + 2 rels + 20*3 effector nodes
     + 24 cells * (3 + 50*3 + 1 + 6*7) = ~4.8k units *)
  check_bool "thousands of units" true (Graph.node_count graph > 4_000);
  check_int "ref integrity" 0 (List.length (Nf2.Database.check_ref_integrity db));
  (* every effector is referenced at least once with 24*6*3 draws over 20 *)
  let catalog = Nf2.Database.catalog db in
  check_bool "effectors shared" true (Nf2.Catalog.is_shared catalog "effectors")

let test_500_transactions_commit () =
  let db = big_db () in
  let graph = Graph.build db in
  let mix =
    { Sim.Scenario.default_mix with jobs = 500; arrival_gap = 2;
      read_fraction = 0.5; library_update_fraction = 0.02; seed = 77 }
  in
  let specs = Sim.Scenario.manufacturing_mix db graph mix in
  let table = Table.create () in
  let protocol = Protocol.create graph table in
  let jobs = Sim.Scenario.compile graph (Sim.Scenario.Proposed protocol) specs in
  let metrics = Sim.Runner.run ~table jobs in
  check_int "all 500 commit" 500 metrics.Sim.Metrics.committed;
  check_int "table drained" 0 (Table.entry_count table);
  check_bool "work happened" true (metrics.Sim.Metrics.lock_requests > 500)

let test_all_techniques_complete_identically_sized_load () =
  let db = big_db () in
  let graph = Graph.build db in
  let mix =
    { Sim.Scenario.default_mix with jobs = 120; arrival_gap = 3; seed = 31 }
  in
  let specs = Sim.Scenario.manufacturing_mix db graph mix in
  List.iter
    (fun technique_of_table ->
      let table = Table.create () in
      let technique = technique_of_table table in
      let jobs = Sim.Scenario.compile graph technique specs in
      let metrics = Sim.Runner.run ~table jobs in
      check_int
        (Sim.Scenario.technique_name technique ^ ": all jobs done")
        120
        (metrics.Sim.Metrics.committed + metrics.Sim.Metrics.gave_up);
      check_int
        (Sim.Scenario.technique_name technique ^ ": drained")
        0 (Table.entry_count table))
    [ (fun table -> Sim.Scenario.Proposed (Protocol.create graph table));
      (fun _table -> Sim.Scenario.Whole_object);
      (fun _table -> Sim.Scenario.Tuple_level) ]

let test_deep_nested_scale () =
  let db =
    Workload.Generator.nested
      { Workload.Generator.levels = 5; per_level = 10; refs_per_object = 3;
        nested_seed = 2 }
  in
  let graph = Graph.build db in
  let table = Table.create () in
  let protocol = Protocol.create ~rule:Protocol.Rule_4 graph table in
  (* X every product in turn; plans stay bounded by reachable entries *)
  let products = Option.get (Nf2.Database.relation db "products") in
  Nf2.Relation.fold
    (fun key _value () ->
      let node =
        Option.get (Graph.object_node graph (Oid.make ~relation:"products" ~key))
      in
      let steps = Protocol.plan protocol ~txn:1 node Mode.X in
      check_bool (key ^ ": plan bounded") true (List.length steps <= 200);
      check_bool (key ^ ": propagation present") true
        (List.exists
           (fun { Protocol.reason; _ } -> reason = Protocol.Downward_propagation)
           steps))
    products ();
  (* serial execution through the table is conflict-free *)
  Nf2.Relation.fold
    (fun key _value () ->
      let node =
        Option.get (Graph.object_node graph (Oid.make ~relation:"products" ~key))
      in
      (match Protocol.try_acquire protocol ~txn:1 node Mode.X with
       | Protocol.Acquired _ -> ()
       | Protocol.Blocked _ -> Alcotest.fail "self-conflict");
      let (_ : Table.grant list) = Protocol.end_of_transaction protocol ~txn:1 in
      ())
    products ()

let test_escalation_storm () =
  (* 30 transactions each locking many fine granules, escalating, and
     releasing: counts stay consistent. *)
  let db = Workload.Figure1.database ~c_objects:64 () in
  let graph = Graph.build db in
  let table = Table.create () in
  let protocol = Protocol.create graph table in
  let c1 = Option.get (Graph.object_node graph (Oid.make ~relation:"cells" ~key:"c1")) in
  let holu = Colock.Node_id.child c1 "c_objects" in
  let members = (Graph.node_exn graph holu).Graph.children in
  for txn = 1 to 30 do
    List.iter
      (fun member ->
        match Protocol.acquire protocol ~txn member Mode.S with
        | Protocol.Acquired _ -> ()
        | Protocol.Blocked _ -> Alcotest.fail "S sharing cannot block")
      members;
    (match
       Colock.Escalation.maybe_escalate protocol ~txn ~threshold:8 ~parent:holu
     with
     | Colock.Escalation.Escalated _ -> ()
     | Colock.Escalation.Escalation_blocked _ | Colock.Escalation.Not_needed ->
       Alcotest.fail "escalation expected");
    let (_ : Table.grant list) = Protocol.end_of_transaction protocol ~txn in
    ()
  done;
  check_int "drained" 0 (Table.entry_count table);
  check_int "30 escalations" 30 (Table.stats table).Lockmgr.Lock_stats.escalations

let () =
  Alcotest.run "soak"
    [ ("scale",
       [ Alcotest.test_case "big graph builds" `Quick test_big_graph_builds;
         Alcotest.test_case "500 transactions" `Quick
           test_500_transactions_commit;
         Alcotest.test_case "all techniques complete" `Quick
           test_all_techniques_complete_identically_sized_load;
         Alcotest.test_case "deep nested scale" `Quick test_deep_nested_scale;
         Alcotest.test_case "escalation storm" `Quick test_escalation_storm ])
    ]
