module Table = Lockmgr.Lock_table
module Protocol = Colock.Protocol

type t = {
  protocol : Protocol.t;
  clock : unit -> int;
  mutable next_id : int;
  txns : (Table.txn_id, Transaction.t) Hashtbl.t;
}

let create ?clock protocol =
  let counter = ref 0 in
  let default_clock () =
    incr counter;
    !counter
  in
  { protocol; clock = Option.value ~default:default_clock clock;
    next_id = 1; txns = Hashtbl.create 64 }

let protocol manager = manager.protocol

let begin_txn ?(kind = Transaction.Short) manager =
  let id = manager.next_id in
  manager.next_id <- id + 1;
  let txn =
    { Transaction.id; kind; started_at = manager.clock ();
      status = Transaction.Active; restarts = 0 }
  in
  Hashtbl.replace manager.txns id txn;
  txn

let find manager id = Hashtbl.find_opt manager.txns id

let active_txns manager =
  Hashtbl.fold
    (fun _id txn accu -> if Transaction.is_active txn then txn :: accu else accu)
    manager.txns []
  |> List.sort (fun a b -> Int.compare a.Transaction.id b.Transaction.id)

type acquire_outcome =
  | Granted
  | Waiting of {
      node : Colock.Node_id.t;
      blockers : Table.txn_id list;
    }
  | Deadlock_victim

let abort manager ?(reason = Transaction.User_abort) txn =
  let table = Protocol.table manager.protocol in
  let woken_by_cancel = Table.cancel_wait table ~txn:txn.Transaction.id in
  let woken_by_release =
    Protocol.end_of_transaction manager.protocol ~txn:txn.Transaction.id
  in
  txn.Transaction.status <- Transaction.Aborted reason;
  woken_by_cancel @ woken_by_release

(* Resolve deadlocks after [txn] started waiting.  Returns [true] when [txn]
   itself was sacrificed. *)
let resolve_deadlock manager txn =
  let table = Protocol.table manager.protocol in
  let rec resolve () =
    match Lockmgr.Deadlock.find_cycle ~edges:(Table.waits_for_edges table) with
    | None -> false
    | Some cycle ->
      (* Older transactions (earlier start) survive: the victim is the one
         with the smallest priority, so the youngest start must rank
         lowest. *)
      let priority id =
        match find manager id with
        | Some candidate -> -candidate.Transaction.started_at
        | None -> max_int
      in
      let victim_id = Lockmgr.Deadlock.choose_victim ~priority cycle in
      let victim =
        match find manager victim_id with
        | Some victim -> victim
        | None -> invalid_arg "Txn_manager: unknown victim"
      in
      let (_ : Table.grant list) =
        abort manager ~reason:Transaction.Deadlock_victim victim
      in
      if victim_id = txn.Transaction.id then true else resolve ()
  in
  resolve ()

let acquire manager txn ?duration node mode =
  if Transaction.is_finished txn then
    invalid_arg "Txn_manager.acquire: transaction is finished";
  match Protocol.acquire manager.protocol ~txn:txn.Transaction.id ?duration node mode with
  | Protocol.Acquired _steps ->
    txn.Transaction.status <- Transaction.Active;
    Granted
  | Protocol.Blocked { step; blockers; _ } ->
    txn.Transaction.status <-
      Transaction.Waiting { node = step.Protocol.node; blockers };
    if resolve_deadlock manager txn then Deadlock_victim
    else begin
      (* the victim (if any) was someone else; we may have been granted in
         the meantime — report the wait either way, the caller re-acquires *)
      Waiting { node = step.Protocol.node; blockers }
    end

let commit ?(release_long = false) manager txn =
  if Transaction.is_finished txn then
    invalid_arg "Txn_manager.commit: transaction is finished";
  let grants =
    match txn.Transaction.kind, release_long with
    | Transaction.Short, _ | Transaction.Long, true ->
      Protocol.end_of_transaction manager.protocol ~txn:txn.Transaction.id
    | Transaction.Long, false ->
      Protocol.commit_keeping_long_locks manager.protocol
        ~txn:txn.Transaction.id
  in
  txn.Transaction.status <- Transaction.Committed;
  grants

let unblocked manager grants =
  List.filter_map
    (fun grant ->
      match find manager grant.Table.g_txn with
      | Some txn -> (
        match txn.Transaction.status with
        | Transaction.Waiting _ ->
          (* only flip once even if several grants landed *)
          txn.Transaction.status <- Transaction.Active;
          Some txn
        | Transaction.Active | Transaction.Committed | Transaction.Aborted _ ->
          None)
      | None -> None)
    grants
