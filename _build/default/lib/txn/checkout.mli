(** The workstation–server environment (§1, §3.1): check-out of complex
    objects from the central database into private workstation databases,
    check-in of changed data, long locks that survive system shutdowns.

    A check-out acquires a *long* lock on the complex object through the
    paper's protocol (whole-object granule — the [HaLo82] usage pattern) and
    copies the value into the transaction's private store. Locks are held
    until the conversational session ends ({!finish_session}); check-in
    writes the changed object back under the X lock already held. Long
    locks persist to a lock file: after a simulated shutdown,
    {!restore_locks} replays them into a fresh lock table. *)

type t

type error =
  | Unknown_object of Nf2.Oid.t
  | Not_checked_out of Nf2.Oid.t
  | Not_exclusive of Nf2.Oid.t  (** check-in of a read-only check-out *)
  | Blocked of {
      node : Colock.Node_id.t;
      blockers : Lockmgr.Lock_table.txn_id list;
    }
  | Deadlock
  | Write_back of Nf2.Database.error

val pp_error : Format.formatter -> error -> unit

val create : ?lock_file:string -> Txn_manager.t -> Nf2.Database.t -> t
(** [lock_file] defaults to ["colock_long_locks.txt"] (relative to cwd). *)

val manager : t -> Txn_manager.t

val check_out :
  t -> Transaction.t -> Nf2.Oid.t -> mode:[ `Read | `Update ] ->
  (Nf2.Value.t, error) result
(** On success the private copy is returned (and kept in the workstation
    store). Under rule 4′ a check-out for update of an object referencing a
    library the transaction may not modify takes only S locks on the library
    entries. *)

val local_copy : t -> Transaction.t -> Nf2.Oid.t -> Nf2.Value.t option
val update_local : t -> Transaction.t -> Nf2.Oid.t -> Nf2.Value.t -> (unit, error) result
(** Mutates the private copy only (work happening on the workstation). *)

val check_in : t -> Transaction.t -> Nf2.Oid.t -> (unit, error) result
(** Writes the private copy back to the central database (requires an
    exclusive check-out). Locks stay until {!finish_session} — strict 2PL. *)

val checked_out : t -> Transaction.t -> Nf2.Oid.t list
(** Sorted. *)

val finish_session :
  t -> Transaction.t -> Lockmgr.Lock_table.grant list
(** Commits the conversational transaction, releasing all its locks (long
    ones included) and dropping its private copies. *)

val save_locks : t -> unit
(** Persists every long lock in the table to the lock file (overwrites). *)

val restore_locks : t -> int
(** Replays the lock file into the (presumably fresh) lock table as long
    locks, parents before children; returns the number of locks restored.
    Missing file restores nothing. *)
