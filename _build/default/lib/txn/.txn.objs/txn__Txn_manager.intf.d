lib/txn/txn_manager.mli: Colock Lockmgr Transaction
