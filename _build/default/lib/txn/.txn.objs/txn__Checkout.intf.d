lib/txn/checkout.mli: Colock Format Lockmgr Nf2 Transaction Txn_manager
