lib/txn/transaction.mli: Colock Format Lockmgr
