lib/txn/txn_manager.ml: Colock Hashtbl Int List Lockmgr Option Transaction
