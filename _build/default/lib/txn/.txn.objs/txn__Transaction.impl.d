lib/txn/transaction.ml: Colock Format List Lockmgr String
