lib/txn/checkout.ml: Colock Format Fun Hashtbl List Lockmgr Nf2 Option Printf String Sys Transaction Txn_manager
