module Table = Lockmgr.Lock_table
module Mode = Lockmgr.Lock_mode
module Protocol = Colock.Protocol
module Graph = Colock.Instance_graph
module Oid = Nf2.Oid

type checkout_record = { value : Nf2.Value.t; exclusive : bool }

type t = {
  manager : Txn_manager.t;
  db : Nf2.Database.t;
  lock_file : string;
  store : (Table.txn_id * string, checkout_record) Hashtbl.t;
      (* private workstation databases, keyed by (txn, oid) *)
}

type error =
  | Unknown_object of Oid.t
  | Not_checked_out of Oid.t
  | Not_exclusive of Oid.t
  | Blocked of {
      node : Colock.Node_id.t;
      blockers : Table.txn_id list;
    }
  | Deadlock
  | Write_back of Nf2.Database.error

let pp_error formatter = function
  | Unknown_object oid ->
    Format.fprintf formatter "unknown object %a" Oid.pp oid
  | Not_checked_out oid ->
    Format.fprintf formatter "%a is not checked out" Oid.pp oid
  | Not_exclusive oid ->
    Format.fprintf formatter "%a was checked out for read only" Oid.pp oid
  | Blocked { node; blockers } ->
    Format.fprintf formatter "blocked on %a by %s" Colock.Node_id.pp node
      (String.concat "," (List.map string_of_int blockers))
  | Deadlock -> Format.pp_print_string formatter "deadlock victim"
  | Write_back db_error -> Nf2.Database.pp_error formatter db_error

let create ?(lock_file = "colock_long_locks.txt") manager db =
  { manager; db; lock_file; store = Hashtbl.create 32 }

let manager checkout = checkout.manager

let check_out checkout txn oid ~mode =
  let graph = Protocol.graph (Txn_manager.protocol checkout.manager) in
  match Graph.object_node graph oid with
  | None -> Error (Unknown_object oid)
  | Some node -> (
    let lock_mode = match mode with `Read -> Mode.S | `Update -> Mode.X in
    match
      Txn_manager.acquire checkout.manager txn ~duration:Table.Long node
        lock_mode
    with
    | Txn_manager.Deadlock_victim -> Error Deadlock
    | Txn_manager.Waiting { node; blockers } -> Error (Blocked { node; blockers })
    | Txn_manager.Granted -> (
      match Nf2.Database.deref checkout.db oid with
      | None -> Error (Unknown_object oid)
      | Some value ->
        Hashtbl.replace checkout.store
          (txn.Transaction.id, Oid.to_string oid)
          { value; exclusive = (match mode with `Read -> false | `Update -> true) };
        Ok value))

let local_copy checkout txn oid =
  Option.map
    (fun record -> record.value)
    (Hashtbl.find_opt checkout.store (txn.Transaction.id, Oid.to_string oid))

let update_local checkout txn oid value =
  match Hashtbl.find_opt checkout.store (txn.Transaction.id, Oid.to_string oid) with
  | None -> Error (Not_checked_out oid)
  | Some record ->
    if not record.exclusive then Error (Not_exclusive oid)
    else begin
      Hashtbl.replace checkout.store
        (txn.Transaction.id, Oid.to_string oid)
        { record with value };
      Ok ()
    end

let check_in checkout txn oid =
  match Hashtbl.find_opt checkout.store (txn.Transaction.id, Oid.to_string oid) with
  | None -> Error (Not_checked_out oid)
  | Some record ->
    if not record.exclusive then Error (Not_exclusive oid)
    else begin
      match Nf2.Database.replace checkout.db (Oid.relation oid) record.value with
      | Ok _oid -> Ok ()
      | Error db_error -> Error (Write_back db_error)
    end

let checked_out checkout txn =
  Hashtbl.fold
    (fun (owner, oid_text) _record accu ->
      if owner = txn.Transaction.id then
        match Oid.of_string oid_text with
        | Some oid -> oid :: accu
        | None -> accu
      else accu)
    checkout.store []
  |> List.sort Oid.compare

let finish_session checkout txn =
  let grants = Txn_manager.commit ~release_long:true checkout.manager txn in
  let stale =
    Hashtbl.fold
      (fun ((owner, _oid_text) as key) _record accu ->
        if owner = txn.Transaction.id then key :: accu else accu)
      checkout.store []
  in
  List.iter (Hashtbl.remove checkout.store) stale;
  grants

(* ------------------------------------------------------------ Persistence *)

(* One lock per line: "<txn_id> <mode> <resource>".  Resources never contain
   spaces (node steps come from identifiers and keys; rendered oids use
   '/'). *)

(* Written to a temporary file and renamed on success, so a failure mid-save
   never truncates the previous (valid) lock file. *)
let save_locks checkout =
  let table = Protocol.table (Txn_manager.protocol checkout.manager) in
  let temp_file = checkout.lock_file ^ ".tmp" in
  let channel = open_out temp_file in
  (try
     List.iter
       (fun resource ->
         List.iter
           (fun (txn_id, mode) ->
             (* only long locks survive a shutdown *)
             let is_long =
               List.exists
                 (fun (held_resource, _mode, duration) ->
                   String.equal held_resource resource
                   && duration = Table.Long)
                 (Table.locks_of table ~txn:txn_id)
             in
             if is_long then
               Printf.fprintf channel "%d %s %s\n" txn_id
                 (Mode.to_string mode) resource)
           (Table.holders table ~resource))
       (Table.resources table);
     close_out channel
   with exn ->
     close_out_noerr channel;
     (try Sys.remove temp_file with Sys_error _ -> ());
     raise exn);
  Sys.rename temp_file checkout.lock_file

let restore_locks checkout =
  if not (Sys.file_exists checkout.lock_file) then 0
  else begin
    let table = Protocol.table (Txn_manager.protocol checkout.manager) in
    let channel = open_in checkout.lock_file in
    let restored = ref 0 in
    Fun.protect
      ~finally:(fun () -> close_in channel)
      (fun () ->
        let parse line =
          match String.index_opt line ' ' with
          | None -> None
          | Some first -> (
            let rest = String.sub line (first + 1) (String.length line - first - 1) in
            match String.index_opt rest ' ' with
            | None -> None
            | Some second -> (
              let txn_text = String.sub line 0 first in
              let mode_text = String.sub rest 0 second in
              let resource =
                String.sub rest (second + 1) (String.length rest - second - 1)
              in
              match int_of_string_opt txn_text, Mode.of_string mode_text with
              | Some txn_id, Some mode -> Some (txn_id, mode, resource)
              | (Some _ | None), (Some _ | None) -> None))
        in
        let entries = ref [] in
        (try
           while true do
             match parse (input_line channel) with
             | Some entry -> entries := entry :: !entries
             | None -> ()
           done
         with End_of_file -> ());
        (* parents (shorter resources, lexicographic prefix) first *)
        let ordered =
          List.sort
            (fun (_t1, _m1, r1) (_t2, _m2, r2) -> String.compare r1 r2)
            !entries
        in
        List.iter
          (fun (txn_id, mode, resource) ->
            match Table.request table ~txn:txn_id ~duration:Table.Long ~resource mode with
            | Table.Granted -> incr restored
            | Table.Waiting _ -> ())
          ordered);
    !restored
  end
