module Schema = Nf2.Schema
module Value = Nf2.Value

type manufacturing = {
  cells : int;
  objects_per_cell : int;
  robots_per_cell : int;
  effectors : int;
  effectors_per_robot : int;
  seed : int;
}

let default_manufacturing =
  { cells = 4; objects_per_cell = 20; robots_per_cell = 4; effectors = 16;
    effectors_per_robot = 2; seed = 7 }

let create_relation_exn db schema =
  match Nf2.Database.create_relation db schema with
  | Ok _store -> ()
  | Error error ->
    invalid_arg
      (Format.asprintf "Generator: cannot create relation: %a"
         Nf2.Database.pp_error error)

let insert_exn db relation value =
  match Nf2.Database.insert db relation value with
  | Ok _oid -> ()
  | Error error ->
    invalid_arg
      (Format.asprintf "Generator: cannot insert into %s: %a" relation
         Nf2.Database.pp_error error)

(* [count] distinct samples from e1..eN, deterministic in [state]. *)
let sample_effectors state ~available ~count =
  let count = min count available in
  let rec draw chosen =
    if List.length chosen >= count then chosen
    else
      let candidate = 1 + Random.State.int state available in
      if List.mem candidate chosen then draw chosen
      else draw (candidate :: chosen)
  in
  List.rev_map (Printf.sprintf "e%d") (draw [])

let manufacturing parameters =
  let state = Random.State.make [| parameters.seed |] in
  let db = Nf2.Database.create "db1" in
  create_relation_exn db Figure1.effectors_schema;
  create_relation_exn db Figure1.cells_schema;
  for position = 1 to parameters.effectors do
    insert_exn db "effectors"
      (Figure1.effector
         ~key:(Printf.sprintf "e%d" position)
         ~tool:(Printf.sprintf "t%d" position))
  done;
  for cell_position = 1 to parameters.cells do
    let objects =
      List.init parameters.objects_per_cell (fun position ->
          Figure1.cell_object ~id:(position + 1)
            ~name:(Printf.sprintf "o%d" (position + 1)))
    in
    let robots =
      List.init parameters.robots_per_cell (fun position ->
          Figure1.robot
            ~key:(Printf.sprintf "r%d" (position + 1))
            ~trajectory:(Printf.sprintf "tr%d" (position + 1))
            ~effectors:
              (sample_effectors state ~available:parameters.effectors
                 ~count:parameters.effectors_per_robot))
    in
    insert_exn db "cells"
      (Figure1.cell
         ~key:(Printf.sprintf "c%d" cell_position)
         ~objects ~robots)
  done;
  db

let shared_effector ~robots =
  let db = Nf2.Database.create "db1" in
  create_relation_exn db Figure1.effectors_schema;
  create_relation_exn db Figure1.cells_schema;
  insert_exn db "effectors" (Figure1.effector ~key:"e1" ~tool:"t1");
  let robot_values =
    List.init robots (fun position ->
        Figure1.robot
          ~key:(Printf.sprintf "r%d" (position + 1))
          ~trajectory:(Printf.sprintf "tr%d" (position + 1))
          ~effectors:[ "e1" ])
  in
  insert_exn db "cells"
    (Figure1.cell ~key:"c1"
       ~objects:[ Figure1.cell_object ~id:1 ~name:"o1" ]
       ~robots:robot_values);
  db

type deep = {
  depth : int;
  fanout : int;
  objects : int;
  share : bool;
  parts : int;
  seed : int;
}

let default_deep =
  { depth = 3; fanout = 3; objects = 4; share = true; parts = 8; seed = 11 }

let parts_schema =
  Schema.relation ~name:"parts" ~segment:"seg_parts" ~key:"part_id"
    [ Schema.field "part_id" (Schema.Atomic Schema.Str);
      Schema.field "material" (Schema.Atomic Schema.Str) ]

(* Nested schema: level d > 0 is a set of tuples with a node id, a payload
   and the next level; level 0 is the leaf tuple (payload + optional ref). *)
let rec deep_level ~share depth =
  if depth = 0 then
    Schema.Tuple
      (Schema.field "leaf_id" (Schema.Atomic Schema.Str)
       :: Schema.field "payload" (Schema.Atomic Schema.Str)
       ::
       (if share then
          [ Schema.field "part" (Schema.Atomic (Schema.Ref "parts")) ]
        else []))
  else
    Schema.Set
      (Schema.Tuple
         [ Schema.field "node_id" (Schema.Atomic Schema.Str);
           Schema.field "children" (deep_level ~share (depth - 1)) ])

let deep_schema ~share ~depth =
  Schema.relation ~name:"assemblies" ~segment:"seg_asm" ~key:"asm_id"
    [ Schema.field "asm_id" (Schema.Atomic Schema.Str);
      Schema.field "tree" (deep_level ~share depth) ]

let deep_leaf_path ~depth =
  let rec extend path remaining =
    if remaining = 0 then Nf2.Path.child path "payload"
    else extend (Nf2.Path.child path "children") (remaining - 1)
  in
  extend (Nf2.Path.of_list [ "tree" ]) depth

let deep parameters =
  let state = Random.State.make [| parameters.seed |] in
  let db = Nf2.Database.create "db1" in
  if parameters.share then begin
    create_relation_exn db parts_schema;
    for position = 1 to parameters.parts do
      insert_exn db "parts"
        (Value.Tuple
           [ ("part_id", Value.Str (Printf.sprintf "p%d" position));
             ("material", Value.Str (Printf.sprintf "m%d" (position mod 5)))
           ])
    done
  end;
  create_relation_exn db
    (deep_schema ~share:parameters.share ~depth:parameters.depth);
  let rec deep_value prefix depth =
    if depth = 0 then
      Value.Tuple
        (("leaf_id", Value.Str prefix)
         :: ("payload", Value.Str ("pay_" ^ prefix))
         ::
         (if parameters.share then
            let part =
              Printf.sprintf "p%d"
                (1 + Random.State.int state (max 1 parameters.parts))
            in
            [ ("part", Value.ref_to ~relation:"parts" ~key:part) ]
          else []))
    else
      Value.Set
        (List.init parameters.fanout (fun position ->
             let name = Printf.sprintf "%s_%d" prefix (position + 1) in
             Value.Tuple
               [ ("node_id", Value.Str name);
                 ("children", deep_value name (depth - 1)) ]))
  in
  for position = 1 to parameters.objects do
    let key = Printf.sprintf "a%d" position in
    insert_exn db "assemblies"
      (Value.Tuple
         [ ("asm_id", Value.Str key);
           ("tree", deep_value key parameters.depth) ])
  done;
  db

type nested_libraries = {
  levels : int;
  per_level : int;
  refs_per_object : int;
  nested_seed : int;
}

let default_nested =
  { levels = 3; per_level = 4; refs_per_object = 2; nested_seed = 21 }

let nested_library_schema ~level ~deepest =
  let name = Printf.sprintf "lib%d" level in
  let fields =
    Schema.field "item_id" (Schema.Atomic Schema.Str)
    :: Schema.field "spec" (Schema.Atomic Schema.Str)
    ::
    (if deepest then []
     else
       [ Schema.field "components"
           (Schema.Set (Schema.Atomic (Schema.Ref (Printf.sprintf "lib%d" (level + 1))))) ])
  in
  Schema.relation ~name ~segment:(Printf.sprintf "seg_lib%d" level)
    ~key:"item_id" fields

let products_schema =
  Schema.relation ~name:"products" ~segment:"seg_prod" ~key:"prod_id"
    [ Schema.field "prod_id" (Schema.Atomic Schema.Str);
      Schema.field "title" (Schema.Atomic Schema.Str);
      Schema.field "parts" (Schema.Set (Schema.Atomic (Schema.Ref "lib1"))) ]

let nested parameters =
  if parameters.levels < 1 then invalid_arg "Generator.nested: levels >= 1";
  let state = Random.State.make [| parameters.nested_seed |] in
  let db = Nf2.Database.create "db1" in
  (* deepest level first, so reference targets exist for validation *)
  for level = parameters.levels downto 1 do
    let deepest = level = parameters.levels in
    create_relation_exn db (nested_library_schema ~level ~deepest);
    for position = 1 to parameters.per_level do
      let key = Printf.sprintf "lib%d_%d" level position in
      let refs =
        if deepest then []
        else
          let next = level + 1 in
          let rec draw chosen =
            if List.length chosen >= min parameters.refs_per_object parameters.per_level
            then chosen
            else
              let candidate =
                Printf.sprintf "lib%d_%d" next
                  (1 + Random.State.int state parameters.per_level)
              in
              if List.mem candidate chosen then draw chosen
              else draw (candidate :: chosen)
          in
          List.rev (draw [])
      in
      let fields =
        ("item_id", Value.Str key)
        :: ("spec", Value.Str (Printf.sprintf "spec_%s" key))
        ::
        (if deepest then []
         else
           [ ("components",
              Value.Set
                (List.map
                   (fun target ->
                     Value.ref_to
                       ~relation:(Printf.sprintf "lib%d" (level + 1))
                       ~key:target)
                   refs)) ])
      in
      insert_exn db (Printf.sprintf "lib%d" level) (Value.Tuple fields)
    done
  done;
  create_relation_exn db products_schema;
  for position = 1 to parameters.per_level do
    let refs =
      let rec draw chosen =
        if List.length chosen >= min parameters.refs_per_object parameters.per_level
        then chosen
        else
          let candidate =
            Printf.sprintf "lib1_%d"
              (1 + Random.State.int state parameters.per_level)
          in
          if List.mem candidate chosen then draw chosen
          else draw (candidate :: chosen)
      in
      List.rev (draw [])
    in
    insert_exn db "products"
      (Value.Tuple
         [ ("prod_id", Value.Str (Printf.sprintf "prod%d" position));
           ("title", Value.Str (Printf.sprintf "product %d" position));
           ("parts",
            Value.Set
              (List.map
                 (fun target -> Value.ref_to ~relation:"lib1" ~key:target)
                 refs)) ])
  done;
  db
