(** Parameterized synthetic databases for the experiments.

    All generators are deterministic in their [seed]. *)

type manufacturing = {
  cells : int;
  objects_per_cell : int;
  robots_per_cell : int;
  effectors : int;
  effectors_per_robot : int;
  seed : int;
}

val default_manufacturing : manufacturing
(** 4 cells, 20 objects, 4 robots, 16 effectors, 2 refs per robot, seed 7. *)

val manufacturing : manufacturing -> Nf2.Database.t
(** A Fig. 1-shaped database: cells "c1".."cN" over a shared effector library
    "e1".."eM"; each robot references [effectors_per_robot] distinct random
    effectors. *)

val shared_effector : robots:int -> Nf2.Database.t
(** E5's worst case: one cell whose [robots] robots all reference the single
    effector "e1" — the sharing degree of that effector is exactly
    [robots]. *)

type deep = {
  depth : int;  (** nesting levels of collections below the object root *)
  fanout : int;  (** members per collection *)
  objects : int;  (** complex objects in the "assemblies" relation *)
  share : bool;  (** leaves reference a shared "parts" library *)
  parts : int;  (** size of the parts library (when [share]) *)
  seed : int;
}

val default_deep : deep

val deep : deep -> Nf2.Database.t
(** The E9 depth sweep: relation "assemblies" whose objects nest [depth]
    levels of sets of tuples, [fanout] members each; when [share], every leaf
    tuple references a random part of the shared "parts" relation. *)

val deep_leaf_path : depth:int -> Nf2.Path.t
(** Path from an assembly root to the leaf payload attribute at the given
    depth (the deepest BLU level of {!deep}). *)

type nested_libraries = {
  levels : int;  (** number of stacked library relations (≥ 1) *)
  per_level : int;  (** objects per library relation *)
  refs_per_object : int;  (** references into the next level *)
  nested_seed : int;
}

val default_nested : nested_libraries

val nested : nested_libraries -> Nf2.Database.t
(** "Common data may again contain common data" (§2): relation "products"
    references library "lib1", whose objects reference "lib2", and so on for
    [levels] levels. Exercises transitive downward propagation across
    superunit boundaries. Products are named "prod1".."prodN" (N =
    [per_level]); library objects are "lib<level>_<i>". *)
