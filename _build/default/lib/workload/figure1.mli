(** The paper's running example: relations "cells" and "effectors" (Fig. 1)
    and the concrete complex object "cell c1" of Figs. 6/7.

    The relation "cells" models a manufacturing cell containing cell-objects
    which can be manufactured by robots; the effectors (tools) a robot may
    use live in the shared relation "effectors" — a library, so different
    robots may share one effector. *)

val cells_schema : Nf2.Schema.relation
(** cells(cell_id: str, c_objects: S<T(obj_id: int, obj_name: str)>,
    robots: L<T(robot_id: str, trajectory: str, effectors: S<ref>)>)
    in segment "seg1". *)

val effectors_schema : Nf2.Schema.relation
(** effectors(eff_id: str, tool: str) in segment "seg2". *)

val database : ?c_objects:int -> unit -> Nf2.Database.t
(** The database "db1" of Figs. 6/7: effectors e1..e3 (tools t1..t3) and cell
    "c1" with [c_objects] cell-objects (default 3) and robots r1 (using e1,
    e2) and r2 (using e2, e3). Reference pattern exactly as in Fig. 7: Q2
    touching r1 and Q3 touching r2 both reach e2. *)

val effector : key:string -> tool:string -> Nf2.Value.t
val cell_object : id:int -> name:string -> Nf2.Value.t

val robot :
  key:string -> trajectory:string -> effectors:string list -> Nf2.Value.t
(** [effectors] are keys into the "effectors" relation. *)

val cell :
  key:string -> objects:Nf2.Value.t list -> robots:Nf2.Value.t list ->
  Nf2.Value.t
