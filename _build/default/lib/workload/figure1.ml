module Schema = Nf2.Schema
module Value = Nf2.Value

let cells_schema =
  Schema.relation ~name:"cells" ~segment:"seg1" ~key:"cell_id"
    [ Schema.field "cell_id" (Schema.Atomic Schema.Str);
      Schema.field "c_objects"
        (Schema.Set
           (Schema.Tuple
              [ Schema.field "obj_id" (Schema.Atomic Schema.Int);
                Schema.field "obj_name" (Schema.Atomic Schema.Str) ]));
      Schema.field "robots"
        (Schema.List
           (Schema.Tuple
              [ Schema.field "robot_id" (Schema.Atomic Schema.Str);
                Schema.field "trajectory" (Schema.Atomic Schema.Str);
                Schema.field "effectors"
                  (Schema.Set (Schema.Atomic (Schema.Ref "effectors"))) ])) ]

let effectors_schema =
  Schema.relation ~name:"effectors" ~segment:"seg2" ~key:"eff_id"
    [ Schema.field "eff_id" (Schema.Atomic Schema.Str);
      Schema.field "tool" (Schema.Atomic Schema.Str) ]

let effector ~key ~tool =
  Value.Tuple [ ("eff_id", Value.Str key); ("tool", Value.Str tool) ]

let cell_object ~id ~name =
  Value.Tuple [ ("obj_id", Value.Int id); ("obj_name", Value.Str name) ]

let robot ~key ~trajectory ~effectors =
  Value.Tuple
    [ ("robot_id", Value.Str key);
      ("trajectory", Value.Str trajectory);
      ("effectors",
       Value.Set
         (List.map
            (fun eff_key -> Value.ref_to ~relation:"effectors" ~key:eff_key)
            effectors)) ]

let cell ~key ~objects ~robots =
  Value.Tuple
    [ ("cell_id", Value.Str key);
      ("c_objects", Value.Set objects);
      ("robots", Value.List robots) ]

let insert_exn db relation value =
  match Nf2.Database.insert db relation value with
  | Ok _oid -> ()
  | Error error ->
    invalid_arg
      (Format.asprintf "Figure1: cannot insert into %s: %a" relation
         Nf2.Database.pp_error error)

let create_relation_exn db schema =
  match Nf2.Database.create_relation db schema with
  | Ok _store -> ()
  | Error error ->
    invalid_arg
      (Format.asprintf "Figure1: cannot create relation: %a"
         Nf2.Database.pp_error error)

let database ?(c_objects = 3) () =
  let db = Nf2.Database.create "db1" in
  create_relation_exn db effectors_schema;
  create_relation_exn db cells_schema;
  List.iter
    (fun (key, tool) -> insert_exn db "effectors" (effector ~key ~tool))
    [ ("e1", "t1"); ("e2", "t2"); ("e3", "t3") ];
  let objects =
    List.init c_objects (fun position ->
        cell_object ~id:(position + 1)
          ~name:(Printf.sprintf "o%d" (position + 1)))
  in
  let robots =
    [ robot ~key:"r1" ~trajectory:"tr1" ~effectors:[ "e1"; "e2" ];
      robot ~key:"r2" ~trajectory:"tr2" ~effectors:[ "e2"; "e3" ] ]
  in
  insert_exn db "cells" (cell ~key:"c1" ~objects ~robots);
  db
