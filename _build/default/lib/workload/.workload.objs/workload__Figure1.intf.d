lib/workload/figure1.mli: Nf2
