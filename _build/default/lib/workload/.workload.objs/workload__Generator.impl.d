lib/workload/generator.ml: Figure1 Format List Nf2 Printf Random
