lib/workload/generator.mli: Nf2
