lib/workload/figure1.ml: Format List Nf2 Printf
