(** Shared vocabulary of the baseline lock techniques the paper compares
    against (§3): lock plans as explicit request lists, plus an executor that
    plays a plan against a lock table. *)

type request = { node : Colock.Node_id.t; mode : Lockmgr.Lock_mode.t }

type outcome =
  | Acquired of int  (** number of requests issued *)
  | Blocked of {
      request : request;
      blockers : Lockmgr.Lock_table.txn_id list;
    }

val acquire :
  Lockmgr.Lock_table.t -> txn:Lockmgr.Lock_table.txn_id -> ?wait:bool ->
  request list -> outcome
(** Issues the requests in order. With [wait] (default true) a conflict
    leaves the transaction queued on the failing node; otherwise try-only. *)

val with_ancestors :
  Colock.Instance_graph.t -> Colock.Node_id.t -> Lockmgr.Lock_mode.t ->
  request list
(** The System R chain: intention locks on all ancestors (root first), then
    the node in the given mode. *)

val merge : request list -> request list
(** Deduplicates by node, merging modes with the supremum, keeping first
    positions (parents stay before children). *)

val pp_request : Format.formatter -> request -> unit
