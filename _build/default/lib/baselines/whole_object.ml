module Graph = Colock.Instance_graph

let plan graph ~oid mode =
  match Graph.object_node graph oid with
  | None -> []
  | Some root ->
    (* Closure over referenced complex objects, depth-first, deduplicated. *)
    let seen = Hashtbl.create 16 in
    let order = ref [] in
    let rec visit node =
      let key = Colock.Node_id.to_resource node in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        order := node :: !order;
        List.iter
          (fun ref_oid ->
            match Graph.object_node graph ref_oid with
            | Some target -> visit target
            | None -> ())
          (Graph.subtree_refs graph node)
      end
    in
    visit root;
    let objects = List.rev !order in
    Technique.merge
      (List.concat_map
         (fun node -> Technique.with_ancestors graph node mode)
         objects)

let lock_count graph ~oid mode = List.length (plan graph ~oid mode)
