module Mode = Lockmgr.Lock_mode
module Table = Lockmgr.Lock_table
module Graph = Colock.Instance_graph
module Node_id = Colock.Node_id

let parent_enumeration_visits graph =
  List.length (Colock.Units.unit_members graph ~root:(Graph.root graph))

let plan_exclusive_all_parents graph ~oid =
  match Graph.object_node graph oid with
  | None -> []
  | Some node ->
    let referencing_chains =
      List.concat_map
        (fun referencer -> Technique.with_ancestors graph referencer Mode.IX)
        (Graph.referencers graph oid)
    in
    let own_chain = Technique.with_ancestors graph node Mode.X in
    Technique.merge (referencing_chains @ own_chain)

let plan_hierarchical_naive graph node mode =
  Technique.with_ancestors graph node mode

type hidden_conflict = {
  at : Node_id.t;
  writer : Table.txn_id;
  other : Table.txn_id;
}

let resource_index graph =
  let index = Hashtbl.create 256 in
  Graph.fold
    (fun node () ->
      Hashtbl.replace index
        (Node_id.to_resource node.Graph.id)
        node.Graph.id)
    graph ();
  index

(* DAG-effective coverage of one transaction: explicit data locks flow down
   solid edges and across dashed references (the transaction *believes* the
   referenced common data are implicitly locked). *)
let coverage ?rights graph table ~index ~txn =
  let covered = Hashtbl.create 64 in
  let weaken mode target_relation =
    match rights, mode with
    | Some rights, Mode.X ->
      if Authz.Rights.may_modify rights ~txn ~relation:target_relation then
        Mode.X
      else Mode.S
    | (None | Some _), _ -> mode
  in
  let record node_id mode =
    let key = Node_id.to_resource node_id in
    let merged =
      match Hashtbl.find_opt covered key with
      | Some (previous, _node) -> Mode.sup previous mode
      | None -> mode
    in
    Hashtbl.replace covered key (merged, node_id)
  in
  let rec spread node_id mode =
    record node_id mode;
    let node = Graph.node_exn graph node_id in
    List.iter (fun child -> spread child mode) node.Graph.children;
    List.iter
      (fun ref_oid ->
        match Graph.object_node graph ref_oid with
        | Some target ->
          let target_mode = weaken mode (Nf2.Oid.relation ref_oid) in
          let key = Node_id.to_resource target in
          let already =
            match Hashtbl.find_opt covered key with
            | Some (previous, _node) -> Mode.leq target_mode previous
            | None -> false
          in
          if not already then spread target target_mode
        | None -> ())
      node.Graph.refs_out
  in
  List.iter
    (fun (resource, mode, _duration) ->
      let data_mode =
        match mode with
        | Mode.X -> Some Mode.X
        | Mode.S | Mode.SIX -> Some Mode.S
        | Mode.NL | Mode.IS | Mode.IX -> None
      in
      match data_mode with
      | Some data_mode -> (
        match Hashtbl.find_opt index resource with
        | Some node_id -> spread node_id data_mode
        | None -> ())
      | None -> ())
    (Table.locks_of table ~txn);
  covered

let hidden_conflicts ?rights graph table ~txns =
  let index = resource_index graph in
  let coverages =
    List.map (fun txn -> (txn, coverage ?rights graph table ~index ~txn)) txns
  in
  let conflicts = ref [] in
  let rec pairs = function
    | [] -> ()
    | (txn_a, coverage_a) :: rest ->
      List.iter
        (fun (txn_b, coverage_b) ->
          Hashtbl.iter
            (fun key (mode_a, node_id) ->
              match Hashtbl.find_opt coverage_b key with
              | Some (mode_b, _node) ->
                if Mode.grants_write mode_a && Mode.grants_read mode_b then
                  conflicts := { at = node_id; writer = txn_a; other = txn_b } :: !conflicts
                else if Mode.grants_write mode_b && Mode.grants_read mode_a then
                  conflicts := { at = node_id; writer = txn_b; other = txn_a } :: !conflicts
              | None -> ())
            coverage_a)
        rest;
      pairs rest
  in
  pairs coverages;
  List.sort_uniq compare !conflicts
