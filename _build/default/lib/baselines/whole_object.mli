(** Baseline (a): whole-complex-object locking, as in XSQL (§3.1, Fig. 2b).

    A transaction always locks the complex object as a whole — "including
    existing common data, if any": the check-out closure follows references
    and locks every reachable referenced object in the same mode. This is
    the appropriate compromise when objects are always manipulated as a whole
    (check-out/check-in), and the §3.2.1 strawman when they are not. *)

val plan :
  Colock.Instance_graph.t -> oid:Nf2.Oid.t -> Lockmgr.Lock_mode.t ->
  Technique.request list
(** Intentions above, the requested mode on the object node and on every
    complex object reachable through references (transitively, with its own
    intention chain). Empty if the object is unknown. *)

val lock_count : Colock.Instance_graph.t -> oid:Nf2.Oid.t ->
  Lockmgr.Lock_mode.t -> int
