(** Baseline (c): the traditional System R DAG protocol applied naively to
    non-disjoint complex objects (§3.2.2).

    Two straightforward applications, each with one of the paper's
    protocol-oriented problems:

    - {!plan_exclusive_all_parents} keeps the DAG rule "before requesting an
      X/IX lock on a node, all parent nodes must be IX locked". On shared
      data this means enumerating every referencing node — expensive without
      backward pointers — and locking a chain for each
      ({!parent_enumeration_visits} models the scan cost).
    - {!plan_hierarchical_naive} drops that rule and uses plain hierarchical
      locking along the access path only. It is cheap but *wrong*: implicit
      locks on common data held via one path are invisible from other paths;
      {!hidden_conflicts} detects the resulting anomalies. *)

val parent_enumeration_visits : Colock.Instance_graph.t -> int
(** Cost (nodes scanned) of determining all referencing nodes of a shared
    object without backward pointers: the size of the outer unit, i.e. all
    non-shared data. *)

val plan_exclusive_all_parents :
  Colock.Instance_graph.t -> oid:Nf2.Oid.t -> Technique.request list
(** X on a shared complex object under the strict DAG rule: for every
    referencing node, IX on its full ancestor chain and itself; IX on the
    object's own parent chain; then X on the object. *)

val plan_hierarchical_naive :
  Colock.Instance_graph.t -> Colock.Node_id.t -> Lockmgr.Lock_mode.t ->
  Technique.request list
(** Intentions along the solid ancestor chain, the mode on the node — and no
    propagation whatsoever. *)

type hidden_conflict = {
  at : Colock.Node_id.t;  (** the common-data node both believe they own *)
  writer : Lockmgr.Lock_table.txn_id;
  other : Lockmgr.Lock_table.txn_id;
}

val hidden_conflicts :
  ?rights:Authz.Rights.t -> Colock.Instance_graph.t -> Lockmgr.Lock_table.t ->
  txns:Lockmgr.Lock_table.txn_id list -> hidden_conflict list
(** Ground-truth audit over transactions that *completed* their lock phase: a
    transaction's *DAG-effective* coverage of a node follows solid edges and
    crosses dashed references (an X on a robot covers the effectors it
    references — weakened to S where [rights] say the library is not
    modifiable). Reported are node/transaction pairs where one
    transaction's write coverage meets another's read or write coverage
    while the lock table never saw a conflict. Empty under the paper's
    protocol; non-empty under {!plan_hierarchical_naive} access to shared
    data. Transactions still blocked mid-plan must be aborted (locks
    released) or excluded before auditing — they never reach their data. *)
