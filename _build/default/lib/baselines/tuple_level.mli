(** Baseline (b): locking each single tuple individually (§3.2.1).

    The opposite strawman: the basic elements of complex objects — the leaf
    tuples — are locked one by one. Fine-grained, so concurrent, but "one
    cell may contain hundreds of c_objects", so the lock count explodes, and
    references still have to be chased to lock the shared tuples they point
    to (the common data are locked at tuple level too). *)

val leaf_tuples :
  Colock.Instance_graph.t -> Colock.Node_id.t -> Colock.Node_id.t list
(** The leaf tuples of the subtree: HeLU nodes without HeLU descendants, plus
    BLUs not covered by any leaf tuple (attributes of interior tuples,
    members of collections of atomics). For a flat tuple node the node
    itself. *)

val plan_node :
  Colock.Instance_graph.t -> Colock.Node_id.t -> Lockmgr.Lock_mode.t ->
  Technique.request list
(** Locks every leaf tuple under the given instance node (intention chains
    above), then chases references out of the subtree and locks the
    referenced objects' leaf tuples the same way, transitively. *)

val plan :
  Colock.Instance_graph.t -> oid:Nf2.Oid.t -> ?target:Nf2.Path.t ->
  Lockmgr.Lock_mode.t -> Technique.request list
(** Locks every leaf tuple under the target path of the object (default: the
    whole object), with intention chains above, then chases references and
    locks the referenced objects' leaf tuples the same way. *)

val lock_count :
  Colock.Instance_graph.t -> oid:Nf2.Oid.t -> ?target:Nf2.Path.t ->
  Lockmgr.Lock_mode.t -> int
