module Mode = Lockmgr.Lock_mode
module Table = Lockmgr.Lock_table
module Node_id = Colock.Node_id
module Graph = Colock.Instance_graph

type request = { node : Node_id.t; mode : Mode.t }

type outcome =
  | Acquired of int
  | Blocked of { request : request; blockers : Table.txn_id list }

let acquire table ~txn ?(wait = true) requests =
  let rec walk issued = function
    | [] -> Acquired issued
    | request :: rest -> (
      let resource = Node_id.to_resource request.node in
      if wait then
        match Table.request table ~txn ~resource request.mode with
        | Table.Granted -> walk (issued + 1) rest
        | Table.Waiting blockers -> Blocked { request; blockers }
      else
        match Table.try_request table ~txn ~resource request.mode with
        | `Granted -> walk (issued + 1) rest
        | `Would_block blockers -> Blocked { request; blockers })
  in
  walk 0 requests

let with_ancestors graph node mode =
  let intention = Mode.intention_for mode in
  List.map
    (fun ancestor -> { node = ancestor; mode = intention })
    (Graph.ancestors graph node)
  @ [ { node; mode } ]

let merge requests =
  let seen = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun { node; mode } ->
      let key = Node_id.to_resource node in
      match Hashtbl.find_opt seen key with
      | Some cell -> cell := { node; mode = Mode.sup !cell.mode mode }
      | None ->
        let cell = ref { node; mode } in
        Hashtbl.replace seen key cell;
        order := cell :: !order)
    requests;
  List.rev_map (fun cell -> !cell) !order

let pp_request formatter { node; mode } =
  Format.fprintf formatter "%a: %a" Node_id.pp node Mode.pp mode
