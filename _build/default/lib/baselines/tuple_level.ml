module Graph = Colock.Instance_graph
module Node_id = Colock.Node_id

let rec has_helu_descendant graph node_id =
  let node = Graph.node_exn graph node_id in
  List.exists
    (fun child ->
      let child_node = Graph.node_exn graph child in
      (match child_node.Graph.kind with
       | Colock.Lockable.Helu -> true
       | Colock.Lockable.Holu | Colock.Lockable.Blu -> false)
      || has_helu_descendant graph child)
    node.Graph.children

let leaf_tuples graph root =
  let rec walk accu node_id =
    let node = Graph.node_exn graph node_id in
    match node.Graph.kind with
    | Colock.Lockable.Helu ->
      if has_helu_descendant graph node_id then
        List.fold_left
          (fun accu child ->
            let child_node = Graph.node_exn graph child in
            match child_node.Graph.kind with
            | Colock.Lockable.Blu -> child :: accu
            | Colock.Lockable.Helu | Colock.Lockable.Holu -> walk accu child)
          accu node.Graph.children
      else node_id :: accu
    | Colock.Lockable.Holu ->
      List.fold_left
        (fun accu child ->
          let child_node = Graph.node_exn graph child in
          match child_node.Graph.kind with
          | Colock.Lockable.Blu -> child :: accu
          | Colock.Lockable.Helu | Colock.Lockable.Holu -> walk accu child)
        accu node.Graph.children
    | Colock.Lockable.Blu -> node_id :: accu
  in
  List.rev (walk [] root)

let plan_roots graph roots mode =
  let seen_objects = Hashtbl.create 16 in
  let rec requests_for roots =
    let leaves = List.concat_map (leaf_tuples graph) roots in
    let own =
      List.concat_map
        (fun leaf -> Technique.with_ancestors graph leaf mode)
        leaves
    in
    let referenced =
      List.concat_map (Graph.subtree_refs graph) roots
      |> List.sort_uniq Nf2.Oid.compare
      |> List.filter_map (fun ref_oid ->
             let key = Nf2.Oid.to_string ref_oid in
             if Hashtbl.mem seen_objects key then None
             else begin
               Hashtbl.replace seen_objects key ();
               Graph.object_node graph ref_oid
             end)
    in
    match referenced with
    | [] -> own
    | _ :: _ -> own @ requests_for referenced
  in
  Technique.merge (requests_for roots)

let plan_node graph node mode = plan_roots graph [ node ] mode

let plan graph ~oid ?(target = Nf2.Path.root) mode =
  match Graph.object_node graph oid with
  | None -> []
  | Some _object_node -> plan_roots graph (Graph.nodes_at_path graph oid target) mode

let lock_count graph ~oid ?target mode =
  List.length (plan graph ~oid ?target mode)
