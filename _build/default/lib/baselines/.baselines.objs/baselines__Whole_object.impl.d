lib/baselines/whole_object.ml: Colock Hashtbl List Technique
