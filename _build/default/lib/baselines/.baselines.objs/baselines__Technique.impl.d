lib/baselines/technique.ml: Colock Format Hashtbl List Lockmgr
