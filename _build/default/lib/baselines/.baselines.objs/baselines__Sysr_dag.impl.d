lib/baselines/sysr_dag.ml: Authz Colock Hashtbl List Lockmgr Nf2 Technique
