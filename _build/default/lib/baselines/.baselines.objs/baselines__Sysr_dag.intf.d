lib/baselines/sysr_dag.mli: Authz Colock Lockmgr Nf2 Technique
