lib/baselines/technique.mli: Colock Format Lockmgr
