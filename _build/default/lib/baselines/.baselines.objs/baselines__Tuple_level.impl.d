lib/baselines/tuple_level.ml: Colock Hashtbl List Nf2 Technique
