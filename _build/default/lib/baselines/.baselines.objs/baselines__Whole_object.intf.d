lib/baselines/whole_object.mli: Colock Lockmgr Nf2 Technique
