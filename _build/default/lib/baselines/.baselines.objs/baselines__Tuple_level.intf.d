lib/baselines/tuple_level.mli: Colock Lockmgr Nf2 Technique
