type node = {
  label : string;
  kind : Lockable.kind;
  schema_path : Nf2.Path.t option;
  children : node list;
  ref_target : string option;
}

type t = { database : string; relation : string; root : node }

let plain label kind schema_path children =
  { label; kind; schema_path; children; ref_target = None }

(* A collection attribute owns a HoLU; its member type contributes a child
   node: HeLU "C.O. <field>" for tuples (as in Fig. 5), a nested HoLU for
   collections of collections, a BLU for collections of atomics. *)
let rec of_attr field_name path attr =
  match attr with
  | Nf2.Schema.Atomic (Nf2.Schema.Ref target) ->
    { label = Printf.sprintf "%S (\"..ref..\")" field_name;
      kind = Lockable.Blu; schema_path = Some path; children = [];
      ref_target = Some target }
  | Nf2.Schema.Atomic (Nf2.Schema.Str | Nf2.Schema.Int | Nf2.Schema.Real | Nf2.Schema.Bool)
    ->
    plain (Printf.sprintf "%S" field_name) Lockable.Blu (Some path) []
  | Nf2.Schema.Set inner | Nf2.Schema.List inner ->
    let member = member_of field_name path inner in
    plain (Printf.sprintf "%S" field_name) Lockable.Holu (Some path) [ member ]
  | Nf2.Schema.Tuple fields ->
    plain (Printf.sprintf "%S" field_name) Lockable.Helu (Some path)
      (of_fields path fields)

and member_of field_name path inner =
  match inner with
  | Nf2.Schema.Tuple fields ->
    plain (Printf.sprintf "C.O. %S" field_name) Lockable.Helu (Some path)
      (of_fields path fields)
  | Nf2.Schema.Atomic _ | Nf2.Schema.Set _ | Nf2.Schema.List _ ->
    of_attr (field_name ^ " member") path inner

and of_fields path fields =
  List.map
    (fun { Nf2.Schema.field_name; field_type } ->
      of_attr field_name (Nf2.Path.child path field_name) field_type)
    fields

let of_relation ~database schema =
  let complex_object =
    plain
      (Printf.sprintf "C.O. %S" schema.Nf2.Schema.rel_name)
      Lockable.Helu (Some Nf2.Path.root)
      (of_fields Nf2.Path.root schema.Nf2.Schema.fields)
  in
  let relation_node =
    plain
      (Printf.sprintf "Relation %S" schema.Nf2.Schema.rel_name)
      Lockable.Holu None [ complex_object ]
  in
  let segment_node =
    plain
      (Printf.sprintf "Segment %S" schema.Nf2.Schema.segment)
      Lockable.Helu None [ relation_node ]
  in
  let database_node =
    plain (Printf.sprintf "Database %S" database) Lockable.Helu None
      [ segment_node ]
  in
  { database; relation = schema.Nf2.Schema.rel_name; root = database_node }

let rec fold_nodes visit accu node =
  let accu = visit accu node in
  List.fold_left (fold_nodes visit) accu node.children

let node_count graph = fold_nodes (fun count _node -> count + 1) 0 graph.root

let blu_count graph =
  fold_nodes
    (fun count node ->
      match node.kind with
      | Lockable.Blu -> count + 1
      | Lockable.Holu | Lockable.Helu -> count)
    0 graph.root

let complex_object_node graph =
  (* database -> segment -> relation -> C.O. *)
  match graph.root.children with
  | [ segment ] -> (
    match segment.children with
    | [ relation ] -> (
      match relation.children with
      | [ complex_object ] -> complex_object
      | [] | _ :: _ -> invalid_arg "Object_graph: malformed relation node")
    | [] | _ :: _ -> invalid_arg "Object_graph: malformed segment node")
  | [] | _ :: _ -> invalid_arg "Object_graph: malformed database node"

let levels_to_path graph path =
  let target_steps = Nf2.Path.to_list path in
  let complex_object = complex_object_node graph in
  (* Walk the remaining steps; collection member nodes are traversed (and
     recorded as levels) without consuming a path step, since [Nf2.Path]
     enters collections implicitly. *)
  let final_step_matches child step =
    match child.schema_path with
    | Some child_path -> (
      match Nf2.Path.last child_path with
      | Some final -> String.equal final step
      | None -> false)
    | None -> false
  in
  let is_member_of node child =
    match child.schema_path, node.schema_path with
    | Some child_path, Some node_path -> Nf2.Path.equal child_path node_path
    | (Some _ | None), (Some _ | None) -> false
  in
  let rec walk node steps =
    match steps with
    | [] -> Some [ node ]
    | step :: rest -> (
      let direct =
        List.find_map
          (fun child ->
            if final_step_matches child step then
              Option.map (fun chain -> node :: chain) (walk child rest)
            else None)
          node.children
      in
      match direct with
      | Some chain -> Some chain
      | None ->
        List.find_map
          (fun child ->
            if is_member_of node child then
              Option.map (fun chain -> node :: chain) (walk child steps)
            else None)
          node.children)
  in
  match walk complex_object target_steps with
  | Some chain -> chain
  | None -> []

let find_path graph path =
  match List.rev (levels_to_path graph path) with
  | deepest :: _ -> Some deepest
  | [] -> None

let reference_nodes graph =
  fold_nodes
    (fun accu node ->
      match node.ref_target, node.schema_path with
      | Some target, Some path -> (path, target) :: accu
      | Some _, None | None, (Some _ | None) -> accu)
    [] graph.root
  |> List.rev

let pp formatter graph =
  let rec pp_node indent formatter node =
    let dashes =
      match node.ref_target with
      | Some target -> Printf.sprintf "  - - -> HeLU (C.O. %S)" target
      | None -> ""
    in
    Format.fprintf formatter "%s%s (%s)%s" indent
      (Lockable.to_string node.kind)
      node.label dashes;
    List.iter
      (fun child ->
        Format.pp_print_cut formatter ();
        pp_node (indent ^ "  ") formatter child)
      node.children
  in
  Format.fprintf formatter "@[<v>%a@]" (pp_node "") graph.root
