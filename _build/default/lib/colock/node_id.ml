type t = string list
(* Reversed steps: leaf first, database name last.  Keeps [child]/[parent]
   constant-time; [steps] reverses. *)

let database name = [ name ]
let child node step = step :: node

let parent = function
  | [] | [ _ ] -> None
  | _leaf :: ancestors -> Some ancestors

let steps node = List.rev node
let of_steps = function [] -> None | steps -> Some (List.rev steps)

let escape step =
  if String.contains step '/' then
    String.concat "//" (String.split_on_char '/' step)
  else step

let to_resource node = String.concat "/" (List.rev_map escape node)
let depth = List.length

let rec is_ancestor ~ancestor node =
  List.length ancestor <= List.length node
  &&
  match node with
  | [] -> false
  | _leaf :: rest ->
    List.equal String.equal ancestor node || is_ancestor ~ancestor rest

let equal = List.equal String.equal
let compare a b = List.compare String.compare (List.rev a) (List.rev b)
let hash = Hashtbl.hash
let pp formatter node = Format.pp_print_string formatter (to_resource node)
