(** Kinds of lockable units and the general lock graph (paper §4.2, Fig. 4).

    The general lock graph has three node kinds. Solid edges say a granule
    may be composed of other granules; the dashed edge says a BLU may be a
    reference into common data (an independent complex object with its own
    lockable units). *)

type kind =
  | Blu  (** basic lockable unit: an atomic attribute (or a reference) *)
  | Holu  (** homogeneous: data of one type — a set, list or relation *)
  | Helu
      (** heterogeneous: composed of different types — a (complex) tuple, a
          segment, a database *)

val derive : Nf2.Schema.attr_type -> kind
(** The derivation rules of §4.3: list → HoLU, set → HoLU, (complex) tuple →
    HeLU, atomic (including references) → BLU. *)

val may_contain : kind -> kind -> bool
(** Solid edges of the general lock graph: HoLUs and HeLUs may be composed of
    units of any kind; BLUs are the smallest lockable units and contain
    nothing. *)

val may_reference : kind -> bool
(** Dashed edge: only a BLU can be a "reference to common data". *)

val equal : kind -> kind -> bool
val to_string : kind -> string
val pp : Format.formatter -> kind -> unit
