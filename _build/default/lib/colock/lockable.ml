type kind = Blu | Holu | Helu

let derive = function
  | Nf2.Schema.Atomic _ -> Blu
  | Nf2.Schema.Set _ | Nf2.Schema.List _ -> Holu
  | Nf2.Schema.Tuple _ -> Helu

let may_contain container _contained =
  match container with Holu | Helu -> true | Blu -> false

let may_reference = function Blu -> true | Holu | Helu -> false
let equal a b = a = b
let to_string = function Blu -> "BLU" | Holu -> "HoLU" | Helu -> "HeLU"
let pp formatter kind = Format.pp_print_string formatter (to_string kind)
