lib/colock/escalation.ml: Instance_graph List Lockmgr Node_id Protocol
