lib/colock/instance_graph.ml: Hashtbl List Lockable Map Nf2 Node_id Option Printf String
