lib/colock/access.mli: Format Lockmgr Nf2
