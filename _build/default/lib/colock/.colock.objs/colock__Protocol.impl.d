lib/colock/protocol.ml: Authz Format Hashtbl Instance_graph List Lockmgr Logs Node_id Printf Units
