lib/colock/access.ml: Format Lockmgr Nf2 Printf
