lib/colock/query_graph.mli: Access Format Lockmgr Nf2
