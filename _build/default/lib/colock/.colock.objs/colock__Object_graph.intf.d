lib/colock/object_graph.mli: Format Lockable Nf2
