lib/colock/node_id.mli: Format
