lib/colock/node_id.ml: Format Hashtbl List String
