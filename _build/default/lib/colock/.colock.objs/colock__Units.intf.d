lib/colock/units.mli: Format Instance_graph Node_id
