lib/colock/escalation.mli: Lockmgr Node_id Protocol
