lib/colock/instance_graph.mli: Lockable Nf2 Node_id
