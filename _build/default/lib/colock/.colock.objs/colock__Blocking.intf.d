lib/colock/blocking.mli: Lockmgr Node_id Protocol
