lib/colock/object_graph.ml: Format List Lockable Nf2 Option Printf String
