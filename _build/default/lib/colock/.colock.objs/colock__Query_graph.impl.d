lib/colock/query_graph.ml: Access Format List Lockmgr Nf2
