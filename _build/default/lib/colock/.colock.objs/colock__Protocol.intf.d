lib/colock/protocol.mli: Authz Format Instance_graph Lockmgr Node_id
