lib/colock/units.ml: Format Instance_graph List Lockable Nf2 Node_id String
