lib/colock/blocking.ml: Condition Domain Fun Int Lockmgr Mutex Protocol Set
