lib/colock/lockable.ml: Format Nf2
