lib/colock/lockable.mli: Format Nf2
