let is_entry_point graph id = (Instance_graph.node_exn graph id).entry_point

let unit_root graph id =
  let rec climb id =
    let current = Instance_graph.node_exn graph id in
    if current.entry_point then id
    else
      match current.parent with
      | None -> id  (* database node: root of the outer unit *)
      | Some parent -> climb parent
  in
  climb id

let in_outer_unit graph id =
  Node_id.equal (unit_root graph id) (Instance_graph.root graph)

let unit_members graph ~root =
  let rec walk accu id =
    let current = Instance_graph.node_exn graph id in
    if current.entry_point && not (Node_id.equal id root) then accu
    else
      let accu = id :: accu in
      List.fold_left walk accu current.children
  in
  List.rev (walk [] root)

let superunit_parents graph ~root =
  Instance_graph.ancestors graph root

let entry_points_below graph id =
  (* Refs carried by the unit-local subtree of [id]: walk solid edges without
     descending into entry points (their refs belong to their own units). *)
  let rec collect accu id' =
    let current = Instance_graph.node_exn graph id' in
    if current.entry_point && not (Node_id.equal id' id) then accu
    else
      let accu = List.rev_append current.refs_out accu in
      List.fold_left collect accu current.children
  in
  collect [] id
  |> List.sort_uniq Nf2.Oid.compare
  |> List.filter_map (Instance_graph.object_node graph)

let pp_unit graph formatter root =
  let members = unit_members graph ~root in
  let depth_of id = Node_id.depth id - Node_id.depth root in
  Format.fprintf formatter "@[<v>";
  List.iteri
    (fun position id ->
      if position > 0 then Format.pp_print_cut formatter ();
      let indent = String.make (2 * depth_of id) ' ' in
      let current = Instance_graph.node_exn graph id in
      let refs =
        match current.Instance_graph.refs_out with
        | [] -> ""
        | refs ->
          "  - - -> "
          ^ String.concat ", " (List.map Nf2.Oid.to_string refs)
      in
      Format.fprintf formatter "%s%a (%s)%s" indent Lockable.pp
        current.Instance_graph.kind
        (Node_id.to_resource id)
        refs)
    members;
  Format.fprintf formatter "@]"
