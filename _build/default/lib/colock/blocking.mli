(** A thread-blocking front-end to the protocol for real concurrent clients
    (OCaml 5 domains or system threads).

    The core {!Protocol} is a synchronous, deterministic data structure — the
    discrete-event simulator owns time there. This wrapper adds the classic
    blocking behaviour instead: {!acquire} parks the calling thread until the
    whole lock plan is granted, releases wake waiters, and waits-for cycles
    abort a victim (whose {!acquire} returns [`Deadlock_victim]).

    All lock-table access is serialized by one mutex, so the underlying
    protocol needs no internal synchronization; threads block on a condition
    variable, not on the lock manager. *)

type t

val create : Protocol.t -> t
val protocol : t -> Protocol.t

val acquire :
  t -> txn:Lockmgr.Lock_table.txn_id -> ?duration:Lockmgr.Lock_table.duration ->
  ?follow_references:bool -> Node_id.t -> Lockmgr.Lock_mode.t ->
  [ `Granted | `Deadlock_victim ]
(** Blocks until granted. On [`Deadlock_victim] every lock of the
    transaction has already been released; the caller should back off and
    restart its work under the same (or a fresh) transaction id. *)

val end_of_transaction : t -> txn:Lockmgr.Lock_table.txn_id -> unit
(** Commit/abort: releases everything and wakes waiters. *)

val run_txn :
  t -> txn:Lockmgr.Lock_table.txn_id ->
  locks:(Node_id.t * Lockmgr.Lock_mode.t) list -> (unit -> 'result) ->
  'result
(** Strict-2PL convenience: acquires all [locks] (restarting transparently
    after deadlock victimhood with exponential-free constant backoff), runs
    the action, then releases. *)
