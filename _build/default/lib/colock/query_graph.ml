type granule = Whole_relation | Whole_object | Subtree of Nf2.Path.t

type choice = {
  access : Access.t;
  granule : granule;
  mode : Lockmgr.Lock_mode.t;
  estimated_locks : float;
  finest_estimate : float;
  anticipated_escalation : bool;
}

type t = { threshold : int; choices : choice list }

(* Fan-out above a path: every collection attribute at a proper prefix
   multiplies the number of instance nodes covering the path. *)
let estimate_at stats ~objects schema path =
  let steps = Nf2.Path.to_list path in
  let rec prefixes accu current = function
    | [] -> List.rev accu
    | step :: rest ->
      let next = Nf2.Path.child current step in
      prefixes (next :: accu) next rest
  in
  let all_prefixes = prefixes [] Nf2.Path.root steps in
  let proper_prefixes =
    match List.rev all_prefixes with
    | [] -> []
    | _self :: rev_front -> List.rev rev_front
  in
  List.fold_left
    (fun count prefix ->
      match Nf2.Schema.find_attr schema prefix with
      | Some (Nf2.Schema.Set _ | Nf2.Schema.List _) ->
        count *. Nf2.Statistics.avg_collection_size stats prefix
      | Some (Nf2.Schema.Atomic _ | Nf2.Schema.Tuple _) | None -> count)
    objects proper_prefixes

let plan_access ~threshold catalog ~stats access =
  let mode = Access.lock_mode access.Access.kind in
  let relation_stats = stats access.Access.relation in
  let objects =
    Nf2.Statistics.estimate_matching relation_stats access.Access.predicate
  in
  let schema = Nf2.Catalog.find catalog access.Access.relation in
  let subtree_estimate path =
    match schema with
    | Some schema -> estimate_at relation_stats ~objects schema path
    | None -> objects
  in
  let target = access.Access.target in
  let finest_estimate =
    if Nf2.Path.equal target Nf2.Path.root then objects
    else subtree_estimate target
  in
  (* Candidate granules, finest first: the target level, then each coarser
     prefix level, then whole objects, then the whole relation. *)
  let rec prefix_levels path accu =
    match Nf2.Path.parent path with
    | None -> accu  (* root reached: whole-object level handled separately *)
    | Some parent ->
      if Nf2.Path.equal parent Nf2.Path.root then accu
      else prefix_levels parent (parent :: accu)
  in
  let path_levels =
    if Nf2.Path.equal target Nf2.Path.root then []
    else target :: List.rev (prefix_levels target [])
    (* deepest first *)
  in
  let candidates =
    List.map
      (fun path -> (Subtree path, subtree_estimate path))
      path_levels
    @ [ (Whole_object, objects); (Whole_relation, 1.0) ]
  in
  let fits (_granule, estimate) = estimate <= float_of_int threshold in
  let granule, estimated_locks =
    match List.find_opt fits candidates with
    | Some chosen -> chosen
    | None -> (Whole_relation, 1.0)
  in
  let anticipated_escalation =
    match granule, path_levels with
    | Subtree path, finest :: _ -> not (Nf2.Path.equal path finest)
    | (Whole_object | Whole_relation), _ :: _ -> true
    | Whole_object, [] -> false
    | Whole_relation, [] -> true
    | Subtree _, [] -> false
  in
  { access; granule; mode; estimated_locks; finest_estimate;
    anticipated_escalation }

let build ~threshold catalog ~stats accesses =
  { threshold;
    choices = List.map (plan_access ~threshold catalog ~stats) accesses }

let pp_granule formatter = function
  | Whole_relation -> Format.pp_print_string formatter "relation"
  | Whole_object -> Format.pp_print_string formatter "complex object"
  | Subtree path -> Format.fprintf formatter "subtree %a" Nf2.Path.pp path

let pp_choice formatter choice =
  Format.fprintf formatter
    "%a -> %a in %a (~%.1f locks%s; target level ~%.1f)" Access.pp
    choice.access pp_granule choice.granule Lockmgr.Lock_mode.pp choice.mode
    choice.estimated_locks
    (if choice.anticipated_escalation then ", escalation anticipated" else "")
    choice.finest_estimate

let pp formatter { threshold; choices } =
  Format.fprintf formatter "@[<v>query-specific lock graph (threshold %d):"
    threshold;
  List.iter
    (fun choice -> Format.fprintf formatter "@,  %a" pp_choice choice)
    choices;
  Format.fprintf formatter "@]"
