(** Object-specific lock graphs (paper §4.3, Fig. 5).

    When a relation is created, its object-specific lock graph is constructed
    automatically from the general lock graph, catalog information and the
    derivation rules:

    + an attribute of type "list" becomes a HoLU,
    + an attribute of type "set" becomes a HoLU,
    + an attribute of type "(complex) tuple" becomes a HeLU,
    + an atomic attribute becomes a BLU.

    The graph is a schema-level artifact: it has one node per *type* of
    lockable unit (the instance-level graph of {!Instance_graph} has one node
    per unit). Relations are HoLUs whose member node is the HeLU "C.O."
    (complex object); a collection attribute contributes both its HoLU and a
    member node; a reference BLU carries a dashed edge to the target
    relation's complex-object HeLU. *)

type node = {
  label : string;  (** display label, e.g. ["Relation \"cells\""] *)
  kind : Lockable.kind;
  schema_path : Nf2.Path.t option;
      (** the attribute this unit covers; [None] for database, segment,
          relation and complex-object nodes ([Path.root] is the C.O. node) *)
  children : node list;  (** solid edges, schema order *)
  ref_target : string option;  (** dashed edge: target relation of a BLU *)
}

type t = { database : string; relation : string; root : node }
(** [root] is the database HeLU. *)

val of_relation : database:string -> Nf2.Schema.relation -> t

val node_count : t -> int
val blu_count : t -> int

val complex_object_node : t -> node
(** The HeLU "C.O. <relation>" node. *)

val find_path : t -> Nf2.Path.t -> node option
(** The node covering the attribute at [path] ([Path.root] gives the
    complex-object HeLU). Collections resolve to their HoLU node. *)

val levels_to_path : t -> Nf2.Path.t -> node list
(** Chain of nodes from the complex-object HeLU down to [find_path]'s node
    (inclusive), i.e. the candidate lock granules within the complex object
    for an access to [path]. Empty when the path does not exist. *)

val reference_nodes : t -> (Nf2.Path.t * string) list
(** Paths and targets of all dashed edges, schema order. *)

val pp : Format.formatter -> t -> unit
(** Tree rendering in the spirit of the paper's Figure 5, dashed edges
    annotated. *)
