(** Query-specific lock graphs: "optimal" lock requests by anticipation of
    lock escalations (paper §4.5, after [HDKS89]).

    During query analysis — before any data is touched — each access is
    assigned a lock *granule* (a level of the object-specific lock graph) and
    a mode. The granule is the finest level whose estimated lock count stays
    at or below the escalation threshold; if even the object level is too
    populous the whole relation is locked up front, so no run-time escalation
    (with its overhead and deadlock risk) will be needed. Estimates come
    from {!Nf2.Statistics}: matching-object counts from predicate
    selectivities, fan-out from average collection sizes. *)

type granule =
  | Whole_relation  (** one lock on the relation node *)
  | Whole_object  (** one lock per matching complex object *)
  | Subtree of Nf2.Path.t
      (** per matching object, one lock on each instance node at this
          attribute path *)

type choice = {
  access : Access.t;
  granule : granule;
  mode : Lockmgr.Lock_mode.t;  (** data mode placed at the granule *)
  estimated_locks : float;  (** at the chosen granule *)
  finest_estimate : float;  (** at the access's own target level *)
  anticipated_escalation : bool;
      (** the chosen granule is coarser than the target level *)
}

type t = { threshold : int; choices : choice list }

val estimate_at :
  Nf2.Statistics.t -> objects:float -> Nf2.Schema.relation -> Nf2.Path.t ->
  float
(** Estimated number of instance locks when locking at attribute path level:
    [objects] times the product of the average sizes of the collections
    strictly above the path. *)

val plan_access :
  threshold:int -> Nf2.Catalog.t -> stats:(string -> Nf2.Statistics.t) ->
  Access.t -> choice

val build :
  threshold:int -> Nf2.Catalog.t -> stats:(string -> Nf2.Statistics.t) ->
  Access.t list -> t

val pp_choice : Format.formatter -> choice -> unit
val pp : Format.formatter -> t -> unit
