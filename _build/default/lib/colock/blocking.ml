module Table = Lockmgr.Lock_table

module Int_set = Set.Make (Int)

type t = {
  protocol : Protocol.t;
  mutex : Mutex.t;
  changed : Condition.t;
  mutable poisoned : Int_set.t;  (* deadlock victims not yet cleaned up *)
}

let create protocol =
  { protocol; mutex = Mutex.create (); changed = Condition.create ();
    poisoned = Int_set.empty }

let protocol wrapper = wrapper.protocol

(* Call with the mutex held. *)
let cleanup_victim wrapper ~txn =
  wrapper.poisoned <- Int_set.remove txn wrapper.poisoned;
  let table = Protocol.table wrapper.protocol in
  let (_ : Table.grant list) = Table.cancel_wait table ~txn in
  let (_ : Table.grant list) =
    Protocol.end_of_transaction wrapper.protocol ~txn
  in
  Condition.broadcast wrapper.changed

(* Call with the mutex held.  Returns [true] when [txn] was sacrificed.

   Poisoning someone else does NOT make the cycle disappear immediately: the
   victim is parked and only cleans up after it re-acquires the mutex. So
   poison exactly once, wake everyone, and return — the caller parks on the
   condition variable, and the next wakeup re-runs detection if the cycle is
   still there (the deterministic victim choice keeps re-selecting the same,
   already-poisoned transaction, so no second victim is sacrificed). *)
let resolve_deadlock wrapper ~txn =
  let table = Protocol.table wrapper.protocol in
  match Lockmgr.Deadlock.find_cycle ~edges:(Table.waits_for_edges table) with
  | None -> false
  | Some cycle ->
    let victim = Lockmgr.Deadlock.choose_victim cycle in
    if victim = txn then true
    else begin
      wrapper.poisoned <- Int_set.add victim wrapper.poisoned;
      Condition.broadcast wrapper.changed;
      false
    end

let acquire wrapper ~txn ?duration ?follow_references node mode =
  Mutex.lock wrapper.mutex;
  let rec attempt () =
    if Int_set.mem txn wrapper.poisoned then begin
      cleanup_victim wrapper ~txn;
      `Deadlock_victim
    end
    else
      match
        Protocol.acquire wrapper.protocol ~txn ?duration ?follow_references
          node mode
      with
      | Protocol.Acquired _ -> `Granted
      | Protocol.Blocked _ ->
        if resolve_deadlock wrapper ~txn then begin
          cleanup_victim wrapper ~txn;
          `Deadlock_victim
        end
        else begin
          Condition.wait wrapper.changed wrapper.mutex;
          attempt ()
        end
  in
  let outcome = attempt () in
  Mutex.unlock wrapper.mutex;
  outcome

let end_of_transaction wrapper ~txn =
  Mutex.lock wrapper.mutex;
  let (_ : Table.grant list) =
    Protocol.end_of_transaction wrapper.protocol ~txn
  in
  wrapper.poisoned <- Int_set.remove txn wrapper.poisoned;
  Condition.broadcast wrapper.changed;
  Mutex.unlock wrapper.mutex

let run_txn wrapper ~txn ~locks action =
  let rec attempt () =
    let rec acquire_all = function
      | [] -> `Granted
      | (node, mode) :: rest -> (
        match acquire wrapper ~txn node mode with
        | `Granted -> acquire_all rest
        | `Deadlock_victim -> `Deadlock_victim)
    in
    match acquire_all locks with
    | `Granted ->
      Fun.protect
        ~finally:(fun () -> end_of_transaction wrapper ~txn)
        action
    | `Deadlock_victim ->
      (* locks already gone; brief pause and retry *)
      Domain.cpu_relax ();
      attempt ()
  in
  attempt ()
