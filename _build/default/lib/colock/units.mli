(** Outer units, inner units, superunits and entry points (paper §4.4.1).

    The nodes of an object-specific lock graph partition into one *outer
    unit* (non-shared data from the relation node up to the database node and
    down to the first references into common data) and *inner units*, each
    rooted at an *entry point* — a complex object of a shared relation. A
    *superunit* is a unit plus the immediate parents of its root up to and
    including the database node. Units are always disjoint; superunits need
    not be. Both have hierarchical structure: every node except the database
    root has exactly one immediate parent. *)

val is_entry_point : Instance_graph.t -> Node_id.t -> bool

val unit_root : Instance_graph.t -> Node_id.t -> Node_id.t
(** The root of the unit containing the node: the nearest
    ancestor-or-self entry point, or the database node when the node lies in
    the outer unit. *)

val in_outer_unit : Instance_graph.t -> Node_id.t -> bool

val unit_members : Instance_graph.t -> root:Node_id.t -> Node_id.t list
(** All nodes of the unit rooted at [root]: the solid subtree, not descending
    into entry points (which root units of their own). For the outer unit
    pass the database node; note that objects of shared relations hang off
    their relation node along solid lines, so the outer unit stops right
    above them. Deterministic order (preorder). *)

val superunit_parents : Instance_graph.t -> root:Node_id.t -> Node_id.t list
(** The immediate parents of a unit root up to and including the database
    node, root-first — the nodes "implicit upward propagation" must
    intention-lock. Empty for the database node itself. *)

val entry_points_below : Instance_graph.t -> Node_id.t -> Node_id.t list
(** Entry points of the inner units accessible from the node via exactly one
    dashed hop (refs carried by the node's unit-local subtree). Not
    transitive; the protocol's downward propagation iterates this. *)

val pp_unit : Instance_graph.t -> Format.formatter -> Node_id.t -> unit
(** Renders the unit rooted at the given node, for diagnostics and the Fig. 6
    experiment. *)
