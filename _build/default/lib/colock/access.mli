(** Access specifications: what a query touches and how.

    The query analyzer reduces each query variable binding to one access —
    relation, optional equality predicate, target attribute subtree, and kind
    of access — which is all §4.5's determination of "optimal" lock requests
    needs. *)

type kind = Read | Update | Delete

type t = {
  relation : string;
  predicate : Nf2.Path.t option;
      (** attribute carrying an equality predicate restricting the objects
          ([None]: all objects qualify) *)
  target : Nf2.Path.t;
      (** the attribute subtree accessed; [Path.root] for whole objects *)
  kind : kind;
}

val make :
  ?predicate:Nf2.Path.t -> ?target:Nf2.Path.t -> kind -> string -> t

val lock_mode : kind -> Lockmgr.Lock_mode.t
(** Read → S, Update/Delete → X: "the least restrictive way necessary". *)

val pp : Format.formatter -> t -> unit
