(** Identity of instance-level lockable units.

    A node id is the path of containment steps from the database node down to
    the unit: database, segment, relation, complex-object key, then attribute
    and collection-member steps, e.g. [db1/seg1/cells/c1/robots/r1]. The
    rendering doubles as the resource name handed to the generic
    {!Lockmgr.Lock_table}. *)

type t

val database : string -> t
(** The root node of a database's lock graph. *)

val child : t -> string -> t
(** One containment step down. Steps containing ['/'] are escaped in the
    rendering so distinct ids never collide. *)

val parent : t -> t option
(** [None] on the database node. *)

val steps : t -> string list
(** All steps, database name first. *)

val of_steps : string list -> t option
(** [None] on the empty list. *)

val to_resource : t -> string
(** ["db1/seg1/cells/c1"]; injective. *)

val depth : t -> int
(** Number of steps: the database node has depth 1. *)

val is_ancestor : ancestor:t -> t -> bool
(** Proper-or-equal ancestry along containment steps. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
