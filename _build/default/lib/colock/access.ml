type kind = Read | Update | Delete

type t = {
  relation : string;
  predicate : Nf2.Path.t option;
  target : Nf2.Path.t;
  kind : kind;
}

let make ?predicate ?(target = Nf2.Path.root) kind relation =
  { relation; predicate; target; kind }

let lock_mode = function
  | Read -> Lockmgr.Lock_mode.S
  | Update | Delete -> Lockmgr.Lock_mode.X

let pp formatter { relation; predicate; target; kind } =
  let kind_text =
    match kind with Read -> "read" | Update -> "update" | Delete -> "delete"
  in
  Format.fprintf formatter "%s %s.%a%s" kind_text relation Nf2.Path.pp target
    (match predicate with
     | None -> ""
     | Some path -> Printf.sprintf " where %s = ?" (Nf2.Path.to_string path))
