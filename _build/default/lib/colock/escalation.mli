(** Run-time lock escalation and de-escalation.

    §4.5: on object-specific lock graphs, run-time escalations "cause immense
    overhead and increase highly the probability for deadlocks" — which is
    why the query-specific lock graph anticipates them. This module provides
    the run-time mechanism itself, so the E8 experiment can compare
    anticipated against unanticipated locking, and implements de-escalation,
    listed as future work in the paper's §5. *)

type escalation_result =
  | Escalated of {
      parent : Node_id.t;
      mode : Lockmgr.Lock_mode.t;
      released_children : int;
    }
  | Escalation_blocked of { blockers : Lockmgr.Lock_table.txn_id list }
  | Not_needed

val child_locks :
  Protocol.t -> txn:Lockmgr.Lock_table.txn_id -> parent:Node_id.t ->
  (Node_id.t * Lockmgr.Lock_mode.t) list
(** Direct children of [parent] on which the transaction holds explicit
    locks. *)

val maybe_escalate :
  Protocol.t -> txn:Lockmgr.Lock_table.txn_id -> threshold:int ->
  parent:Node_id.t -> escalation_result
(** When the transaction holds more than [threshold] explicit child locks
    under [parent], trades them for one lock on [parent] in the supremum of
    the children's data modes (S if only S children, X as soon as one child
    is X), then releases the child locks (they become implicit). Counted in
    the lock table's statistics. *)

val deescalate :
  Protocol.t -> txn:Lockmgr.Lock_table.txn_id -> Node_id.t ->
  keep:(Node_id.t * Lockmgr.Lock_mode.t) list ->
  (Lockmgr.Lock_table.grant list, Protocol.outcome) result
(** Future-work extension: replaces a coarse data lock on the node by
    explicit locks on the [keep] descendants, then downgrades the node to the
    matching intention mode, waking compatible waiters. Returns the grants
    produced by the downgrade, or the blocked outcome if a [keep] lock could
    not be acquired (the coarse lock is then left untouched). *)
