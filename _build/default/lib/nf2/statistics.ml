type t = {
  relation : string;
  cardinality : int;
  collection_sizes : (Path.t * float) list;
  distinct_counts : (Path.t * int) list;
}

module Path_map = Map.Make (struct
  type t = Path.t

  let compare = Path.compare
end)

module String_set = Set.Make (String)

let empty relation =
  { relation; cardinality = 0; collection_sizes = []; distinct_counts = [] }

let compute store =
  let counts = ref Path_map.empty in
  (* member count and instance count per collection path *)
  let distincts = ref Path_map.empty in
  let record_collection path members =
    let members_before, instances_before =
      match Path_map.find_opt path !counts with
      | None -> 0, 0
      | Some totals -> totals
    in
    counts :=
      Path_map.add path (members_before + members, instances_before + 1) !counts
  in
  let record_atomic path rendering =
    let seen =
      match Path_map.find_opt path !distincts with
      | None -> String_set.empty
      | Some seen -> seen
    in
    distincts := Path_map.add path (String_set.add rendering seen) !distincts
  in
  let rec walk path value =
    match value with
    | Value.Str _ | Value.Int _ | Value.Real _ | Value.Bool _ -> (
      match Value.render_atomic value with
      | Some rendering -> record_atomic path rendering
      | None -> ())
    | Value.Ref oid -> record_atomic path (Oid.to_string oid)
    | Value.Set members | Value.List members ->
      record_collection path (List.length members);
      List.iter (walk path) members
    | Value.Tuple bindings ->
      List.iter (fun (field, sub) -> walk (Path.child path field) sub) bindings
  in
  let cardinality =
    Relation.fold
      (fun _key value seen ->
        walk Path.root value;
        seen + 1)
      store 0
  in
  let collection_sizes =
    Path_map.bindings !counts
    |> List.map (fun (path, (members, instances)) ->
           (path, float_of_int members /. float_of_int (max 1 instances)))
  in
  let distinct_counts =
    Path_map.bindings !distincts
    |> List.map (fun (path, seen) -> (path, String_set.cardinal seen))
  in
  { relation = Relation.name store; cardinality; collection_sizes;
    distinct_counts }

let avg_collection_size stats path =
  match
    List.find_opt (fun (p, _size) -> Path.equal p path) stats.collection_sizes
  with
  | Some (_path, size) -> size
  | None -> 1.0

let selectivity_eq stats path =
  match
    List.find_opt (fun (p, _count) -> Path.equal p path) stats.distinct_counts
  with
  | Some (_path, count) when count > 0 -> 1.0 /. float_of_int count
  | Some _ | None -> 1.0

let estimate_matching stats predicate_path =
  let cardinality = float_of_int stats.cardinality in
  let matched =
    match predicate_path with
    | None -> cardinality
    | Some path -> cardinality *. selectivity_eq stats path
  in
  if stats.cardinality = 0 then 0.0 else Float.max 1.0 matched

let pp formatter stats =
  Format.fprintf formatter "@[<v>stats(%s): cardinality %d" stats.relation
    stats.cardinality;
  List.iter
    (fun (path, size) ->
      Format.fprintf formatter "@,  |%a| ~ %.2f" Path.pp path size)
    stats.collection_sizes;
  List.iter
    (fun (path, count) ->
      Format.fprintf formatter "@,  #distinct(%a) = %d" Path.pp path count)
    stats.distinct_counts;
  Format.fprintf formatter "@]"
