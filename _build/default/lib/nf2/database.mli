(** A database: named collection of segments holding complex relations.

    Mirrors the System R containment hierarchy the paper starts from
    (Fig. 2): database > segments > relations > (complex objects > ...). *)

type t

type error =
  | Catalog_error of Catalog.error
  | Relation_error of Relation.error
  | Unknown_relation of string
  | Index_error of string

val pp_error : Format.formatter -> error -> unit

val create : string -> t
val name : t -> string
val catalog : t -> Catalog.t

val create_relation : t -> Schema.relation -> (Relation.t, error) result
(** Validates the schema (including cross-relation checks against what is
    already in the catalog) and registers the relation. *)

val relation : t -> string -> Relation.t option
val relations : t -> Relation.t list
(** Sorted by name. *)

val insert : t -> string -> Value.t -> (Oid.t, error) result
val replace : t -> string -> Value.t -> (Oid.t, error) result
val delete : t -> Oid.t -> (unit, error) result

val deref : t -> Oid.t -> Value.t option
(** Follows a reference to the complex object it designates. *)

val create_index : t -> relation:string -> Path.t -> (unit, error) result
(** Builds (or rebuilds) a secondary index on an atomic attribute path; kept
    up to date by {!insert}, {!replace} and {!delete}. *)

val drop_index : t -> relation:string -> Path.t -> unit
val indexed_paths : t -> relation:string -> Path.t list
(** Sorted. *)

val index_lookup :
  t -> relation:string -> path:Path.t -> Value.t -> string list option
(** [Some keys] (ascending) when an index on [path] exists, [None]
    otherwise. *)

type violation = { holder : Oid.t; at : Path.t; dangling : Oid.t }

val pp_violation : Format.formatter -> violation -> unit

val check_ref_integrity : t -> violation list
(** Every reference stored anywhere must designate an existing complex
    object. *)
