(** A stored complex relation: a keyed set of complex objects. *)

type t

type error =
  | Schema_error of Schema.error
  | Type_error of Value.type_error
  | No_key of string  (** object value carries no renderable key *)
  | Duplicate_key of string
  | Unknown_key of string

val pp_error : Format.formatter -> error -> unit

val create : Schema.relation -> (t, error) result
(** Validates the schema and creates an empty relation. *)

val schema : t -> Schema.relation
val name : t -> string
val insert : t -> Value.t -> (Oid.t, error) result
val replace : t -> Value.t -> (Oid.t, error) result
(** Like {!insert} but overwrites an existing object with the same key. *)

val delete : t -> string -> (unit, error) result
val find : t -> string -> Value.t option
val mem : t -> string -> bool
val cardinality : t -> int

val fold : (string -> Value.t -> 'accu -> 'accu) -> t -> 'accu -> 'accu
(** Iteration in ascending key order, so results are deterministic. *)

val keys : t -> string list
(** Ascending. *)

val objects : t -> (string * Value.t) list
(** Ascending by key. *)
