(** Secondary indexes on atomic attribute paths.

    An index maps the rendered values found at one atomic path of a relation
    to the keys of the complex objects containing them (a path inside a
    collection indexes every member, so one object can appear under several
    index values). Indexes are maintained by {!Database} on every
    insert/replace/delete.

    Following the paper's §1, index synchronization itself is *action-
    oriented* ([BaSc77]) and out of scope: index reads and updates here are
    atomic operations; transaction-oriented locks protect only the data. The
    integration of indexes into the lock technique proper is the paper's §5
    future work. *)

type t

val build : Relation.t -> Path.t -> (t, string) result
(** Scans the relation. Fails when the path does not resolve to an atomic
    attribute of the relation's schema. *)

val path : t -> Path.t
val relation : t -> string

val lookup : t -> Value.t -> string list
(** Keys of the objects carrying the given atomic value at the indexed path,
    ascending. Non-atomic probe values find nothing. *)

val insert_entries : t -> key:string -> Value.t -> unit
(** Registers one (new) object's values. *)

val remove_entries : t -> key:string -> Value.t -> unit
(** Unregisters one object's values (pass the stored value). *)

val cardinality : t -> int
(** Number of distinct indexed values. *)
