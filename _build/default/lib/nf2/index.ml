module String_map = Map.Make (String)
module String_set = Set.Make (String)

type t = {
  relation : string;
  path : Path.t;
  mutable entries : String_set.t String_map.t;
      (* rendered value -> object keys *)
}

let path index = index.path
let relation index = index.relation

let renderings value object_path =
  List.filter_map Value.render_atomic (Value.project value object_path)

let insert_entries index ~key value =
  List.iter
    (fun rendering ->
      let keys =
        match String_map.find_opt rendering index.entries with
        | Some keys -> keys
        | None -> String_set.empty
      in
      index.entries <-
        String_map.add rendering (String_set.add key keys) index.entries)
    (renderings value index.path)

let remove_entries index ~key value =
  List.iter
    (fun rendering ->
      match String_map.find_opt rendering index.entries with
      | None -> ()
      | Some keys ->
        let keys = String_set.remove key keys in
        index.entries <-
          (if String_set.is_empty keys then
             String_map.remove rendering index.entries
           else String_map.add rendering keys index.entries))
    (renderings value index.path)

let build store index_path =
  let schema = Relation.schema store in
  match Schema.find_attr schema index_path with
  | Some (Schema.Atomic _) ->
    let index =
      { relation = Relation.name store; path = index_path;
        entries = String_map.empty }
    in
    Relation.fold
      (fun key value () -> insert_entries index ~key value)
      store ();
    Ok index
  | Some (Schema.Set _ | Schema.List _ | Schema.Tuple _) ->
    Error
      (Printf.sprintf "index path %s is not atomic" (Path.to_string index_path))
  | None ->
    Error
      (Printf.sprintf "relation %s has no attribute %s" (Relation.name store)
         (Path.to_string index_path))

let lookup index probe =
  match Value.render_atomic probe with
  | None -> []
  | Some rendering -> (
    match String_map.find_opt rendering index.entries with
    | None -> []
    | Some keys -> String_set.elements keys)

let cardinality index = String_map.cardinal index.entries
