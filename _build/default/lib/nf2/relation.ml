module String_map = Map.Make (String)

type t = { schema : Schema.relation; mutable tuples : Value.t String_map.t }

type error =
  | Schema_error of Schema.error
  | Type_error of Value.type_error
  | No_key of string
  | Duplicate_key of string
  | Unknown_key of string

let pp_error formatter = function
  | Schema_error schema_error ->
    Format.fprintf formatter "schema error: %a" Schema.pp_error schema_error
  | Type_error type_error ->
    Format.fprintf formatter "type error: %a" Value.pp_type_error type_error
  | No_key relation ->
    Format.fprintf formatter "object for %s has no renderable key" relation
  | Duplicate_key key -> Format.fprintf formatter "duplicate key %S" key
  | Unknown_key key -> Format.fprintf formatter "unknown key %S" key

let create schema =
  match Schema.validate schema with
  | Error schema_error -> Error (Schema_error schema_error)
  | Ok () -> Ok { schema; tuples = String_map.empty }

let schema rel = rel.schema
let name rel = rel.schema.Schema.rel_name

let checked_key rel value =
  match Value.typecheck_object rel.schema value with
  | Error type_error -> Error (Type_error type_error)
  | Ok () -> (
    match Value.key_of_object rel.schema value with
    | None -> Error (No_key rel.schema.Schema.rel_name)
    | Some key -> Ok key)

let insert rel value =
  match checked_key rel value with
  | Error _ as error -> error
  | Ok key ->
    if String_map.mem key rel.tuples then Error (Duplicate_key key)
    else begin
      rel.tuples <- String_map.add key value rel.tuples;
      Ok (Oid.make ~relation:(name rel) ~key)
    end

let replace rel value =
  match checked_key rel value with
  | Error _ as error -> error
  | Ok key ->
    rel.tuples <- String_map.add key value rel.tuples;
    Ok (Oid.make ~relation:(name rel) ~key)

let delete rel key =
  if String_map.mem key rel.tuples then begin
    rel.tuples <- String_map.remove key rel.tuples;
    Ok ()
  end
  else Error (Unknown_key key)

let find rel key = String_map.find_opt key rel.tuples
let mem rel key = String_map.mem key rel.tuples
let cardinality rel = String_map.cardinal rel.tuples
let fold visit rel accu = String_map.fold visit rel.tuples accu
let keys rel = List.map fst (String_map.bindings rel.tuples)
let objects rel = String_map.bindings rel.tuples
