type t = string list

let root = []
let of_list steps = steps
let to_list path = path

let of_string text =
  if String.equal text "" then [] else String.split_on_char '.' text

let to_string path = String.concat "." path
let child path field = path @ [ field ]

let parent path =
  match List.rev path with
  | [] -> None
  | _last :: rev_front -> Some (List.rev rev_front)

let last path =
  match List.rev path with
  | [] -> None
  | final :: _ -> Some final

let rec is_prefix ~prefix path =
  match prefix, path with
  | [], _ -> true
  | _ :: _, [] -> false
  | p :: prefix_rest, q :: path_rest ->
    String.equal p q && is_prefix ~prefix:prefix_rest path_rest

let length = List.length
let equal = List.equal String.equal
let compare = List.compare String.compare
let pp formatter path = Format.pp_print_string formatter (to_string path)
