(** Per-relation statistics.

    §4.5 of the paper determines "optimal" lock requests "from a query and
    additional structural and statistical information". These are the
    statistics: cardinalities, average collection sizes, and distinct counts
    used to estimate equality-predicate selectivities. *)

type t = {
  relation : string;
  cardinality : int;  (** number of complex objects *)
  collection_sizes : (Path.t * float) list;
      (** average number of members per instance, for every set/list path *)
  distinct_counts : (Path.t * int) list;
      (** number of distinct values, for every atomic path *)
}

val compute : Relation.t -> t
(** One full scan of the relation. *)

val empty : string -> t
(** Statistics of an empty (or unknown) relation; estimates degrade to
    worst-case assumptions. *)

val avg_collection_size : t -> Path.t -> float
(** Average member count of the collection at [path]; [1.0] when unknown. *)

val selectivity_eq : t -> Path.t -> float
(** Estimated fraction of objects matched by an equality predicate on the
    atomic attribute at [path]: [1 / distinct], [1.0] when unknown. A
    predicate on the key attribute thus estimates to [1 / cardinality]. *)

val estimate_matching : t -> Path.t option -> float
(** Expected number of complex objects matched by an (optional) equality
    predicate: [cardinality * selectivity]; with no predicate, the full
    cardinality. At least [1.0] when the relation is non-empty. *)

val pp : Format.formatter -> t -> unit
