module String_map = Map.Make (String)

type t = { mutable schemas : Schema.relation String_map.t }

type error =
  | Duplicate_relation of string
  | Unknown_target of { relation : string; path : Path.t; target : string }
  | Recursive_reference of string list

let pp_error formatter = function
  | Duplicate_relation name ->
    Format.fprintf formatter "relation %S already in catalog" name
  | Unknown_target { relation; path; target } ->
    Format.fprintf formatter
      "relation %S references unknown relation %S at %a" relation target
      Path.pp path
  | Recursive_reference cycle ->
    Format.fprintf formatter "recursive complex objects not supported: %s"
      (String.concat " -> " cycle)

let create () = { schemas = String_map.empty }

let add catalog schema =
  let name = schema.Schema.rel_name in
  if String_map.mem name catalog.schemas then Error (Duplicate_relation name)
  else begin
    catalog.schemas <- String_map.add name schema catalog.schemas;
    Ok ()
  end

let find catalog name = String_map.find_opt name catalog.schemas

let relations catalog =
  List.map snd (String_map.bindings catalog.schemas)

let segments catalog =
  let names =
    List.map (fun schema -> schema.Schema.segment) (relations catalog)
  in
  List.sort_uniq String.compare names

(* Reference edges between relations: [source -> targets]. *)
let ref_edges catalog =
  List.map
    (fun schema ->
      ( schema.Schema.rel_name,
        List.map snd (Schema.reference_paths schema) ))
    (relations catalog)

let find_cycle catalog =
  let edges = ref_edges catalog in
  let targets_of name =
    match List.assoc_opt name edges with None -> [] | Some targets -> targets
  in
  (* DFS with an explicit ancestor trail; the first back edge found yields the
     cycle. *)
  let visited = Hashtbl.create 16 in
  let rec visit trail name =
    if List.mem name trail then
      (* [trail] is most-recent-first; rebuild the cycle name -> ... -> name. *)
      let rec take_until accu = function
        | [] -> accu
        | head :: rest ->
          if String.equal head name then head :: accu
          else take_until (head :: accu) rest
      in
      Some (take_until [ name ] trail)
    else if Hashtbl.mem visited name then None
    else begin
      Hashtbl.add visited name ();
      let trail = name :: trail in
      List.fold_left
        (fun found target ->
          match found with Some _ -> found | None -> visit trail target)
        None (targets_of name)
    end
  in
  List.fold_left
    (fun found (name, _targets) ->
      match found with Some _ -> found | None -> visit [] name)
    None edges

let validate catalog =
  let ( let* ) = Result.bind in
  let check_targets accu schema =
    let* () = accu in
    List.fold_left
      (fun accu (path, target) ->
        let* () = accu in
        if String_map.mem target catalog.schemas then Ok ()
        else
          Error
            (Unknown_target
               { relation = schema.Schema.rel_name; path; target }))
      (Ok ())
      (Schema.reference_paths schema)
  in
  let* () = List.fold_left check_targets (Ok ()) (relations catalog) in
  match find_cycle catalog with
  | Some cycle -> Error (Recursive_reference cycle)
  | None -> Ok ()

let referencing catalog target =
  List.concat_map
    (fun schema ->
      List.filter_map
        (fun (path, ref_target) ->
          if String.equal ref_target target then
            Some (schema.Schema.rel_name, path)
          else None)
        (Schema.reference_paths schema))
    (relations catalog)

let is_shared catalog target =
  match referencing catalog target with [] -> false | _ :: _ -> true

let shared_relations catalog =
  List.filter (is_shared catalog)
    (List.map (fun schema -> schema.Schema.rel_name) (relations catalog))
