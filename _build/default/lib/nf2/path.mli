(** Attribute paths inside a complex-object schema.

    A path names one attribute of a complex relation by the sequence of field
    names traversed from the relation's (complex) tuple downwards, e.g.
    ["c_objects"; "obj_id"] in the "cells" relation of the paper's Figure 1.
    Collections (sets, lists) are traversed implicitly: a path step into a
    set-of-tuples names a field of the member tuple. *)

type t

val root : t
(** The empty path: the relation's own complex tuple. *)

val of_list : string list -> t
val to_list : t -> string list

val of_string : string -> t
(** Parses a dotted path, ["c_objects.obj_id"]. The empty string is [root]. *)

val to_string : t -> string

val child : t -> string -> t
(** [child p f] extends [p] with one more field step. *)

val parent : t -> t option
(** [parent p] drops the last step; [None] on [root]. *)

val last : t -> string option
(** The final field name; [None] on [root]. *)

val is_prefix : prefix:t -> t -> bool
(** [is_prefix ~prefix p] holds when [prefix] is an ancestor of (or equal to)
    [p]. *)

val length : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
