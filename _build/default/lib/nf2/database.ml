module String_map = Map.Make (String)

type t = {
  name : string;
  catalog : Catalog.t;
  mutable stores : Relation.t String_map.t;
  mutable indexes : Index.t list String_map.t;  (* by relation *)
}

type error =
  | Catalog_error of Catalog.error
  | Relation_error of Relation.error
  | Unknown_relation of string
  | Index_error of string

let pp_error formatter = function
  | Catalog_error catalog_error -> Catalog.pp_error formatter catalog_error
  | Relation_error relation_error -> Relation.pp_error formatter relation_error
  | Unknown_relation name ->
    Format.fprintf formatter "unknown relation %S" name
  | Index_error message -> Format.fprintf formatter "index error: %s" message

let create name =
  { name; catalog = Catalog.create (); stores = String_map.empty;
    indexes = String_map.empty }
let name db = db.name
let catalog db = db.catalog

let create_relation db schema =
  match Relation.create schema with
  | Error relation_error -> Error (Relation_error relation_error)
  | Ok store -> (
    match Catalog.add db.catalog schema with
    | Error catalog_error -> Error (Catalog_error catalog_error)
    | Ok () -> (
      (* Cross-relation validation may fail (e.g. a reference cycle closed by
         this relation); roll the catalog entry back is not supported, so we
         validate against a catalog that already has every prior relation plus
         this one.  Targets referenced before their creation stay invalid
         until the target is added, so we only reject cycles here. *)
      match Catalog.validate db.catalog with
      | Error (Catalog.Recursive_reference _ as catalog_error) ->
        Error (Catalog_error catalog_error)
      | Error (Catalog.Duplicate_relation _ | Catalog.Unknown_target _) | Ok ()
        ->
        db.stores <- String_map.add schema.Schema.rel_name store db.stores;
        Ok store))

let relation db name = String_map.find_opt name db.stores
let relations db = List.map snd (String_map.bindings db.stores)

let with_relation db name apply =
  match relation db name with
  | None -> Error (Unknown_relation name)
  | Some store -> apply store

let lift_relation_result = function
  | Ok value -> Ok value
  | Error relation_error -> Error (Relation_error relation_error)

let indexes_of db name =
  match String_map.find_opt name db.indexes with
  | Some indexes -> indexes
  | None -> []

let insert db name value =
  with_relation db name (fun store ->
      match lift_relation_result (Relation.insert store value) with
      | Ok oid ->
        List.iter
          (fun index -> Index.insert_entries index ~key:(Oid.key oid) value)
          (indexes_of db name);
        Ok oid
      | Error _ as error -> error)

(* [replace] needs the old value before overwriting, so stale index entries
   can be removed first. *)
let replace db name value =
  with_relation db name (fun store ->
      let key_before =
        Value.key_of_object (Relation.schema store) value
      in
      let old_value =
        match key_before with
        | Some key -> Relation.find store key
        | None -> None
      in
      match lift_relation_result (Relation.replace store value) with
      | Error _ as error -> error
      | Ok oid ->
        List.iter
          (fun index ->
            (match old_value with
             | Some old_value ->
               Index.remove_entries index ~key:(Oid.key oid) old_value
             | None -> ());
            Index.insert_entries index ~key:(Oid.key oid) value)
          (indexes_of db name);
        Ok oid)

let delete db oid =
  with_relation db (Oid.relation oid) (fun store ->
      let old_value = Relation.find store (Oid.key oid) in
      match lift_relation_result (Relation.delete store (Oid.key oid)) with
      | Error _ as error -> error
      | Ok () ->
        (match old_value with
         | Some old_value ->
           List.iter
             (fun index ->
               Index.remove_entries index ~key:(Oid.key oid) old_value)
             (indexes_of db (Oid.relation oid))
         | None -> ());
        Ok ())

let deref db oid =
  match relation db (Oid.relation oid) with
  | None -> None
  | Some store -> Relation.find store (Oid.key oid)

let create_index db ~relation path =
  with_relation db relation (fun store ->
      match Index.build store path with
      | Error message -> Error (Index_error message)
      | Ok index ->
        let others =
          List.filter
            (fun existing -> not (Path.equal (Index.path existing) path))
            (indexes_of db relation)
        in
        db.indexes <- String_map.add relation (index :: others) db.indexes;
        Ok ())

let drop_index db ~relation path =
  let remaining =
    List.filter
      (fun existing -> not (Path.equal (Index.path existing) path))
      (indexes_of db relation)
  in
  db.indexes <- String_map.add relation remaining db.indexes

let indexed_paths db ~relation =
  List.sort Path.compare (List.map Index.path (indexes_of db relation))

let index_lookup db ~relation ~path probe =
  match
    List.find_opt
      (fun index -> Path.equal (Index.path index) path)
      (indexes_of db relation)
  with
  | Some index -> Some (Index.lookup index probe)
  | None -> None

type violation = { holder : Oid.t; at : Path.t; dangling : Oid.t }

let pp_violation formatter { holder; at; dangling } =
  Format.fprintf formatter "%a at %a dangles to %a" Oid.pp holder Path.pp at
    Oid.pp dangling

let check_ref_integrity db =
  let check_object rel_name key value accu =
    let holder = Oid.make ~relation:rel_name ~key in
    (* [Value.refs] has no paths; re-walk with paths for diagnostics. *)
    let rec walk accu path value =
      match value with
      | Value.Ref oid ->
        if Option.is_some (deref db oid) then accu
        else { holder; at = path; dangling = oid } :: accu
      | Value.Str _ | Value.Int _ | Value.Real _ | Value.Bool _ -> accu
      | Value.Set members | Value.List members ->
        List.fold_left (fun accu member -> walk accu path member) accu members
      | Value.Tuple bindings ->
        List.fold_left
          (fun accu (field, sub) -> walk accu (Path.child path field) sub)
          accu bindings
    in
    walk accu Path.root value
  in
  let violations =
    List.fold_left
      (fun accu store ->
        Relation.fold
          (fun key value accu ->
            check_object (Relation.name store) key value accu)
          store accu)
      [] (relations db)
  in
  List.rev violations
