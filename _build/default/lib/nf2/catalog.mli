(** The catalog: all relation schemas of one database, plus the derived
    sharing structure.

    The protocol of the paper relies on catalog information in two places
    (§4.4.2.1): finding the immediate parents of an entry point (always a
    relation node, by the paper's §2 assumption), and knowing which relations
    are "common data" — i.e. referenced by some relation and hence the homes
    of inner units. *)

type t

type error =
  | Duplicate_relation of string
  | Unknown_target of { relation : string; path : Path.t; target : string }
  | Recursive_reference of string list
      (** cycle of relation names; the paper restricts itself to non-recursive
          complex objects (§2), so reference cycles are rejected. *)

val pp_error : Format.formatter -> error -> unit

val create : unit -> t
val add : t -> Schema.relation -> (unit, error) result
val find : t -> string -> Schema.relation option
val relations : t -> Schema.relation list
(** Sorted by relation name. *)

val segments : t -> string list
(** Distinct segment names, sorted. *)

val validate : t -> (unit, error) result
(** Cross-relation checks: every [Ref] target exists; the reference graph
    between relations is acyclic (non-recursive complex objects). *)

val referencing : t -> string -> (string * Path.t) list
(** [referencing catalog target] lists every (relation, path) whose schema
    holds a reference to [target]. *)

val is_shared : t -> string -> bool
(** A relation is shared (its objects are entry points of inner units) when
    some relation references it. *)

val shared_relations : t -> string list
