lib/nf2/path.ml: Format List String
