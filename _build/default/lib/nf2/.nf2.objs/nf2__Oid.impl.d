lib/nf2/oid.ml: Format Hashtbl String
