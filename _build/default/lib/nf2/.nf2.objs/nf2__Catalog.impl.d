lib/nf2/catalog.ml: Format Hashtbl List Map Path Result Schema String
