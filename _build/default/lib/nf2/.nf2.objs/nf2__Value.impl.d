lib/nf2/value.ml: Bool Float Format Int List Oid Path Result Schema String
