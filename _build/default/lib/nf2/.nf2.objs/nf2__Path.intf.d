lib/nf2/path.mli: Format
