lib/nf2/database.mli: Catalog Format Oid Path Relation Schema Value
