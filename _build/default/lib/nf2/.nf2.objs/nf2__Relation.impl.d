lib/nf2/relation.ml: Format List Map Oid Schema String Value
