lib/nf2/value.mli: Format Oid Path Schema
