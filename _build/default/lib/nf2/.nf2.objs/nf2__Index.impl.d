lib/nf2/index.ml: List Map Path Printf Relation Schema Set String Value
