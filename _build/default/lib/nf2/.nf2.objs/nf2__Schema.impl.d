lib/nf2/schema.ml: Format List Path Result String
