lib/nf2/index.mli: Path Relation Value
