lib/nf2/oid.mli: Format
