lib/nf2/catalog.mli: Format Path Schema
