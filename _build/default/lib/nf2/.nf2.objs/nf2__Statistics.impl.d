lib/nf2/statistics.ml: Float Format List Map Oid Path Relation Set String Value
