lib/nf2/schema.mli: Format Path
