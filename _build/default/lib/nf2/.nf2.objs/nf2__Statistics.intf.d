lib/nf2/statistics.mli: Format Path Relation
