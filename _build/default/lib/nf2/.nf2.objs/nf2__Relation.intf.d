lib/nf2/relation.mli: Format Oid Schema Value
