lib/nf2/database.ml: Catalog Format Index List Map Oid Option Path Relation Schema String Value
