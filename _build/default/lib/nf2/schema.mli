(** Schemas of the extended NF² data model with references.

    The paper (§1, §2) bases its discussion on the extended NF² data model
    [PiAn86, ScSc86] plus a reference concept: an attribute of a relation may
    again be table-valued (a set or a list), tuple-valued (a complex tuple),
    atomic, or a reference to a complex object of another relation ("common
    data"). Relations are sets of complex tuples. *)

type atomic =
  | Str
  | Int
  | Real
  | Bool
  | Ref of string
      (** [Ref target] references a complex object of relation [target]. *)

type attr_type =
  | Atomic of atomic
  | Set of attr_type  (** homogeneously structured, unordered *)
  | List of attr_type  (** homogeneously structured, ordered *)
  | Tuple of field list  (** heterogeneously structured *)

and field = { field_name : string; field_type : attr_type }

type relation = {
  rel_name : string;
  segment : string;  (** segment the relation is stored in *)
  key : string;  (** name of the (atomic, non-reference) key field *)
  fields : field list;  (** fields of the relation's complex tuples *)
}

val field : string -> attr_type -> field

val relation :
  name:string -> segment:string -> key:string -> field list -> relation

type error =
  | Empty_relation_name
  | Duplicate_field of Path.t
  | Missing_key_field of string
  | Key_not_atomic of string
  | Key_is_reference of string
  | Empty_tuple of Path.t
  | Empty_field_name of Path.t

val pp_error : Format.formatter -> error -> unit

val validate : relation -> (unit, error) result
(** Structural well-formedness: non-empty names, unique sibling field names,
    key present, atomic and not a reference, no empty tuples. Reference
    targets are checked by {!Catalog.validate}, which sees all relations. *)

val find_attr : relation -> Path.t -> attr_type option
(** [find_attr rel path] resolves an attribute path, entering collections
    implicitly (a step below a [Set]/[List] of tuples names a member field).
    [Path.root] resolves to the relation's complex-tuple type. *)

val reference_paths : relation -> (Path.t * string) list
(** All paths to [Ref] attributes, with their target relations, in schema
    (depth-first) order. *)

val attr_paths : relation -> Path.t list
(** All attribute paths of the relation in depth-first order, the root
    excluded. *)

val depth : relation -> int
(** Nesting depth of the schema tree: 1 for a flat relation. *)

val pp_attr_type : Format.formatter -> attr_type -> unit
val pp_relation : Format.formatter -> relation -> unit
(** Renders the schema tree in the S/L/T notation of the paper's Figure 1. *)
