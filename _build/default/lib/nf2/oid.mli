(** Object identifiers for complex objects.

    Following the paper's assumption that "a reference to common data always
    references a complex object of a relation and never parts of any complex
    object", an oid pairs a relation name with the (rendered) key value of one
    of its complex objects. The paper makes no assumption on how references
    are implemented (key values, surrogates, ...); this rendering-based oid is
    one such implementation and the rest of the system never looks inside. *)

type t = { relation : string; key : string }

val make : relation:string -> key:string -> t
val relation : t -> string
val key : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** ["effectors/e1"]. *)

val of_string : string -> t option
(** Inverse of [to_string]; [None] when no ['/'] separator is present. *)
