type t = { relation : string; key : string }

let make ~relation ~key = { relation; key }
let relation oid = oid.relation
let key oid = oid.key

let equal a b = String.equal a.relation b.relation && String.equal a.key b.key

let compare a b =
  match String.compare a.relation b.relation with
  | 0 -> String.compare a.key b.key
  | order -> order

let hash oid = Hashtbl.hash (oid.relation, oid.key)
let to_string oid = oid.relation ^ "/" ^ oid.key

let of_string text =
  match String.index_opt text '/' with
  | None -> None
  | Some slash ->
    let relation = String.sub text 0 slash in
    let key = String.sub text (slash + 1) (String.length text - slash - 1) in
    if String.equal relation "" || String.equal key "" then None
    else Some { relation; key }

let pp formatter oid = Format.pp_print_string formatter (to_string oid)
