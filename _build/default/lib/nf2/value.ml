type t =
  | Str of string
  | Int of int
  | Real of float
  | Bool of bool
  | Ref of Oid.t
  | Set of t list
  | List of t list
  | Tuple of (string * t) list

let str text = Str text
let int number = Int number
let ref_to ~relation ~key = Ref (Oid.make ~relation ~key)

type type_error = { at : Path.t; expected : Schema.attr_type; found : t }

let rec pp formatter = function
  | Str text -> Format.fprintf formatter "%S" text
  | Int number -> Format.pp_print_int formatter number
  | Real number -> Format.pp_print_float formatter number
  | Bool flag -> Format.pp_print_bool formatter flag
  | Ref oid -> Format.fprintf formatter "ref(%a)" Oid.pp oid
  | Set members -> Format.fprintf formatter "{%a}" pp_members members
  | List members -> Format.fprintf formatter "[%a]" pp_members members
  | Tuple fields ->
    let pp_field formatter (name, value) =
      Format.fprintf formatter "%s: %a" name pp value
    in
    Format.fprintf formatter "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun formatter () -> Format.pp_print_string formatter ", ")
         pp_field)
      fields

and pp_members formatter members =
  Format.pp_print_list
    ~pp_sep:(fun formatter () -> Format.pp_print_string formatter "; ")
    pp formatter members

let pp_type_error formatter { at; expected; found } =
  Format.fprintf formatter "at %a: expected %a, found %a" Path.pp at
    Schema.pp_attr_type expected pp found

let typecheck attr value =
  let ( let* ) = Result.bind in
  let mismatch at expected found = Error { at; expected; found } in
  let rec check path attr value =
    match attr, value with
    | Schema.Atomic Schema.Str, Str _
    | Schema.Atomic Schema.Int, Int _
    | Schema.Atomic Schema.Real, Real _
    | Schema.Atomic Schema.Bool, Bool _ ->
      Ok ()
    | Schema.Atomic (Schema.Ref target), Ref oid ->
      if String.equal (Oid.relation oid) target then Ok ()
      else mismatch path attr value
    | Schema.Set inner, Set members | Schema.List inner, List members ->
      List.fold_left
        (fun accu member ->
          let* () = accu in
          check path inner member)
        (Ok ()) members
    | Schema.Tuple fields, Tuple bindings ->
      let rec check_fields fields bindings =
        match fields, bindings with
        | [], [] -> Ok ()
        | { Schema.field_name; field_type } :: fields_rest,
          (bound_name, bound_value) :: bindings_rest ->
          if not (String.equal field_name bound_name) then
            mismatch path attr value
          else
            let* () = check (Path.child path field_name) field_type bound_value in
            check_fields fields_rest bindings_rest
        | _ :: _, [] | [], _ :: _ -> mismatch path attr value
      in
      check_fields fields bindings
    | Schema.Atomic _, (Str _ | Int _ | Real _ | Bool _ | Ref _ | Set _ | List _ | Tuple _)
    | Schema.Set _, (Str _ | Int _ | Real _ | Bool _ | Ref _ | List _ | Tuple _)
    | Schema.List _, (Str _ | Int _ | Real _ | Bool _ | Ref _ | Set _ | Tuple _)
    | Schema.Tuple _, (Str _ | Int _ | Real _ | Bool _ | Ref _ | Set _ | List _)
      ->
      mismatch path attr value
  in
  check Path.root attr value

let typecheck_object rel value =
  typecheck (Schema.Tuple rel.Schema.fields) value

let field value name =
  match value with
  | Tuple bindings -> List.assoc_opt name bindings
  | Str _ | Int _ | Real _ | Bool _ | Ref _ | Set _ | List _ -> None

let render_atomic = function
  | Str text -> Some text
  | Int number -> Some (string_of_int number)
  | Real number -> Some (string_of_float number)
  | Bool flag -> Some (string_of_bool flag)
  | Ref _ | Set _ | List _ | Tuple _ -> None

let key_of_object rel value =
  match field value rel.Schema.key with
  | None -> None
  | Some key_value -> render_atomic key_value

let project value path =
  let rec walk values steps =
    match steps with
    | [] -> values
    | step :: rest ->
      let step_into value =
        match value with
        | Set members | List members -> walk members steps
        | Tuple _ -> (
          match field value step with
          | Some sub -> walk [ sub ] rest
          | None -> [])
        | Str _ | Int _ | Real _ | Bool _ | Ref _ -> []
      in
      List.concat_map step_into values
  in
  walk [ value ] (Path.to_list path)

let refs value =
  let rec collect accu = function
    | Ref oid -> oid :: accu
    | Str _ | Int _ | Real _ | Bool _ -> accu
    | Set members | List members -> List.fold_left collect accu members
    | Tuple bindings ->
      List.fold_left (fun accu (_name, sub) -> collect accu sub) accu bindings
  in
  List.rev (collect [] value)

let rec equal a b =
  match a, b with
  | Str x, Str y -> String.equal x y
  | Int x, Int y -> Int.equal x y
  | Real x, Real y -> Float.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Ref x, Ref y -> Oid.equal x y
  | Set xs, Set ys | List xs, List ys -> List.equal equal xs ys
  | Tuple xs, Tuple ys ->
    List.equal
      (fun (name_x, value_x) (name_y, value_y) ->
        String.equal name_x name_y && equal value_x value_y)
      xs ys
  | (Str _ | Int _ | Real _ | Bool _ | Ref _ | Set _ | List _ | Tuple _), _ ->
    false
