type atomic = Str | Int | Real | Bool | Ref of string

type attr_type =
  | Atomic of atomic
  | Set of attr_type
  | List of attr_type
  | Tuple of field list

and field = { field_name : string; field_type : attr_type }

type relation = {
  rel_name : string;
  segment : string;
  key : string;
  fields : field list;
}

let field field_name field_type = { field_name; field_type }

let relation ~name ~segment ~key fields =
  { rel_name = name; segment; key; fields }

type error =
  | Empty_relation_name
  | Duplicate_field of Path.t
  | Missing_key_field of string
  | Key_not_atomic of string
  | Key_is_reference of string
  | Empty_tuple of Path.t
  | Empty_field_name of Path.t

let pp_error formatter = function
  | Empty_relation_name -> Format.fprintf formatter "empty relation name"
  | Duplicate_field path ->
    Format.fprintf formatter "duplicate field name at %a" Path.pp path
  | Missing_key_field key ->
    Format.fprintf formatter "key field %S not among the relation's fields" key
  | Key_not_atomic key ->
    Format.fprintf formatter "key field %S is not atomic" key
  | Key_is_reference key ->
    Format.fprintf formatter "key field %S is a reference" key
  | Empty_tuple path ->
    Format.fprintf formatter "tuple with no fields at %a" Path.pp path
  | Empty_field_name path ->
    Format.fprintf formatter "empty field name under %a" Path.pp path

(* Depth-first traversal over all fields, carrying the path to each field.
   Collections are entered implicitly, matching [Path] semantics. *)
let rec fold_fields visit accu path fields =
  List.fold_left
    (fun accu { field_name; field_type } ->
      let field_path = Path.child path field_name in
      let accu = visit accu field_path field_type in
      fold_inner visit accu field_path field_type)
    accu fields

and fold_inner visit accu path = function
  | Atomic _ -> accu
  | Set inner | List inner -> fold_inner visit accu path inner
  | Tuple fields -> fold_fields visit accu path fields

let validate rel =
  let ( let* ) = Result.bind in
  let* () =
    if String.equal rel.rel_name "" then Error Empty_relation_name else Ok ()
  in
  let rec check_fields path fields =
    let* () =
      let names = List.map (fun { field_name; _ } -> field_name) fields in
      let sorted = List.sort String.compare names in
      let rec first_dup = function
        | a :: (b :: _ as rest) ->
          if String.equal a b then Some a else first_dup rest
        | [ _ ] | [] -> None
      in
      match first_dup sorted with
      | Some name -> Error (Duplicate_field (Path.child path name))
      | None -> Ok ()
    in
    let rec check_one accu { field_name; field_type } =
      let* () = accu in
      let* () =
        if String.equal field_name "" then Error (Empty_field_name path)
        else Ok ()
      in
      check_type (Path.child path field_name) field_type
    and check_type path = function
      | Atomic _ -> Ok ()
      | Set inner | List inner -> check_type path inner
      | Tuple [] -> Error (Empty_tuple path)
      | Tuple fields -> check_fields path fields
    in
    List.fold_left check_one (Ok ()) fields
  in
  let* () = check_fields Path.root rel.fields in
  match
    List.find_opt
      (fun { field_name; _ } -> String.equal field_name rel.key)
      rel.fields
  with
  | None -> Error (Missing_key_field rel.key)
  | Some { field_type = Atomic (Ref _); _ } -> Error (Key_is_reference rel.key)
  | Some { field_type = Atomic (Str | Int | Real | Bool); _ } -> Ok ()
  | Some { field_type = Set _ | List _ | Tuple _; _ } ->
    Error (Key_not_atomic rel.key)

(* [Set]/[List] are transparent to paths: a step below a collection of tuples
   names a member-tuple field directly. *)
let find_attr rel path =
  let rec descend attr steps =
    match steps with
    | [] -> Some attr
    | step :: rest -> (
      match attr with
      | Atomic _ -> None
      | Set inner | List inner -> descend inner steps
      | Tuple fields -> (
        match
          List.find_opt
            (fun { field_name; _ } -> String.equal field_name step)
            fields
        with
        | Some { field_type; _ } -> descend field_type rest
        | None -> None))
  in
  descend (Tuple rel.fields) (Path.to_list path)

(* A collection of references (e.g. the "effectors" set of Fig. 1) is itself
   a reference-carrying path: collections are stripped before matching. *)
let reference_paths rel =
  let rec strip = function
    | Set inner | List inner -> strip inner
    | (Atomic _ | Tuple _) as base -> base
  in
  let visit accu path attr =
    match strip attr with
    | Atomic (Ref target) -> (path, target) :: accu
    | Atomic (Str | Int | Real | Bool) | Tuple _ -> accu
    | Set _ | List _ -> accu  (* unreachable after [strip] *)
  in
  List.rev (fold_fields visit [] Path.root rel.fields)

let attr_paths rel =
  let visit accu path _attr = path :: accu in
  List.rev (fold_fields visit [] Path.root rel.fields)

let depth rel =
  let rec type_depth = function
    | Atomic _ -> 0
    | Set inner | List inner -> 1 + type_depth inner
    | Tuple fields -> 1 + fields_depth fields
  and fields_depth fields =
    List.fold_left
      (fun deepest { field_type; _ } -> max deepest (type_depth field_type))
      0 fields
  in
  1 + fields_depth rel.fields

let rec pp_attr_type formatter = function
  | Atomic Str -> Format.pp_print_string formatter "str"
  | Atomic Int -> Format.pp_print_string formatter "int"
  | Atomic Real -> Format.pp_print_string formatter "real"
  | Atomic Bool -> Format.pp_print_string formatter "bool"
  | Atomic (Ref target) -> Format.fprintf formatter "ref(%s)" target
  | Set inner -> Format.fprintf formatter "S<%a>" pp_attr_type inner
  | List inner -> Format.fprintf formatter "L<%a>" pp_attr_type inner
  | Tuple fields ->
    let pp_field formatter { field_name; field_type } =
      Format.fprintf formatter "%s: %a" field_name pp_attr_type field_type
    in
    Format.fprintf formatter "T(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun formatter () -> Format.pp_print_string formatter ", ")
         pp_field)
      fields

let pp_relation formatter rel =
  Format.fprintf formatter "relation %s (segment %s, key %s) %a" rel.rel_name
    rel.segment rel.key pp_attr_type (Tuple rel.fields)
