(** Values (instances) of the extended NF² data model. *)

type t =
  | Str of string
  | Int of int
  | Real of float
  | Bool of bool
  | Ref of Oid.t
  | Set of t list
  | List of t list
  | Tuple of (string * t) list

val str : string -> t
val int : int -> t
val ref_to : relation:string -> key:string -> t

type type_error = {
  at : Path.t;  (** where in the value the mismatch was found *)
  expected : Schema.attr_type;
  found : t;
}

val pp_type_error : Format.formatter -> type_error -> unit

val typecheck : Schema.attr_type -> t -> (unit, type_error) result
(** Structural conformance of a value to an attribute type. [Ref] values must
    point into the declared target relation (existence of the target object is
    checked by {!Database.check_ref_integrity}, not here). Tuple values must
    provide exactly the schema's fields, in schema order. *)

val typecheck_object : Schema.relation -> t -> (unit, type_error) result
(** Conformance of a complex object (one top-level tuple) to its relation. *)

val key_of_object : Schema.relation -> t -> string option
(** Rendered key value of a complex object, e.g. ["c1"]; [None] when the value
    is not a tuple or the key field is missing/non-atomic. *)

val project : t -> Path.t -> t list
(** [project v path] returns every sub-value reached by [path], fanning out
    over collections (hence a list). [Path.root] yields [[v]]. Missing fields
    yield the empty list. *)

val field : t -> string -> t option
(** Direct field access on a tuple value. *)

val refs : t -> Oid.t list
(** Every reference contained anywhere in the value, in depth-first order. *)

val render_atomic : t -> string option
(** Rendering of atomic values used for keys: [Str "c1"] -> ["c1"],
    [Int 3] -> ["3"]; [None] for non-atomics. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
