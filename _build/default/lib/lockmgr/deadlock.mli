(** Deadlock detection on the waits-for graph.

    Locking techniques detect conflicts "usually when the corresponding data
    are accessed" (§1); blocked transactions can then form waits-for cycles,
    which the transaction manager breaks by aborting a victim. *)

val find_cycle :
  edges:(Lock_table.txn_id * Lock_table.txn_id) list ->
  Lock_table.txn_id list option
(** Some cycle [t1; t2; ...; tn] with [t1] waiting for [t2], ..., [tn] waiting
    for [t1]; [None] when the graph is acyclic. Deterministic: the cycle
    reachable from the smallest transaction id is returned. *)

val choose_victim :
  ?priority:(Lock_table.txn_id -> int) -> Lock_table.txn_id list ->
  Lock_table.txn_id
(** The cycle member with the smallest priority (ties: largest id). The
    default priority is [-id], so the youngest (largest-id) transaction dies —
    it has done the least work. Raises [Invalid_argument] on an empty
    cycle. *)
