lib/lockmgr/deadlock.mli: Lock_table
