lib/lockmgr/deadlock.ml: Hashtbl Int List Map
