lib/lockmgr/lock_mode.mli: Format
