lib/lockmgr/lock_stats.mli: Format
