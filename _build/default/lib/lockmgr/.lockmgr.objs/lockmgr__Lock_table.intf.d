lib/lockmgr/lock_table.mli: Format Lock_mode Lock_stats
