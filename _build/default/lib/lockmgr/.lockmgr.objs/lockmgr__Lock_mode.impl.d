lib/lockmgr/lock_mode.ml: Format Int
