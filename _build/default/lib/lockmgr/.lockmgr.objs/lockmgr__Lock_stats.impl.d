lib/lockmgr/lock_stats.ml: Format
