lib/lockmgr/lock_table.ml: Format Hashtbl Int List Lock_mode Lock_stats Logs Option Set String
