module Key = struct
  type t = int * int  (* time, sequence *)

  let compare = compare
end

module Key_map = Map.Make (Key)

type 'event t = {
  mutable events : 'event Key_map.t;
  mutable sequence : int;
  mutable count : int;
}

let create () = { events = Key_map.empty; sequence = 0; count = 0 }

let schedule queue ~time event =
  queue.sequence <- queue.sequence + 1;
  queue.events <- Key_map.add (time, queue.sequence) event queue.events;
  queue.count <- queue.count + 1

let pop queue =
  match Key_map.min_binding_opt queue.events with
  | None -> None
  | Some (((time, _sequence) as key), event) ->
    queue.events <- Key_map.remove key queue.events;
    queue.count <- queue.count - 1;
    Some (time, event)

let is_empty queue = Key_map.is_empty queue.events
let size queue = queue.count
