lib/sim/runner.mli: Baselines Lockmgr Metrics
