lib/sim/event_queue.ml: Map
