lib/sim/runner.ml: Array Baselines Colock Event_queue List Lockmgr Metrics String
