lib/sim/scenario.mli: Colock Nf2 Runner
