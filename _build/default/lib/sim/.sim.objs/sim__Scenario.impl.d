lib/sim/scenario.ml: Array Baselines Colock List Lockmgr Nf2 Random Runner
