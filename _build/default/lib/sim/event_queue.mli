(** A deterministic discrete-event queue: events fire in (time, insertion)
    order. *)

type 'event t

val create : unit -> 'event t
val schedule : 'event t -> time:int -> 'event -> unit
val pop : 'event t -> (int * 'event) option
(** Earliest event, FIFO among equal times; [None] when empty. *)

val is_empty : 'event t -> bool
val size : 'event t -> int
