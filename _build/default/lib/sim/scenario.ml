module Mode = Lockmgr.Lock_mode
module Graph = Colock.Instance_graph
module Node_id = Colock.Node_id
module Technique = Baselines.Technique

type technique =
  | Proposed of Colock.Protocol.t
  | Whole_object
  | Tuple_level

let technique_name = function
  | Proposed protocol -> (
    match Colock.Protocol.rule protocol with
    | Colock.Protocol.Rule_4 -> "proposed (rule 4)"
    | Colock.Protocol.Rule_4_prime -> "proposed (rule 4')")
  | Whole_object -> "whole-object (XSQL)"
  | Tuple_level -> "tuple-level"

type op = Node_read of Node_id.t | Node_update of Node_id.t

type job_spec = { arrival : int; ops : op list; access_cost : int }

let op_node_mode = function
  | Node_read node -> (node, Mode.S)
  | Node_update node -> (node, Mode.X)

(* The complex object containing an instance node (self included). *)
let containing_object graph node_id =
  let rec climb node_id =
    let node = Graph.node_exn graph node_id in
    match node.Graph.oid with
    | Some oid -> Some oid
    | None -> (
      match node.Graph.parent with
      | Some parent -> climb parent
      | None -> None)
  in
  climb node_id

let compile_op graph technique op txn =
  let node, mode = op_node_mode op in
  match technique with
  | Proposed protocol ->
    List.map
      (fun { Colock.Protocol.node; mode; _ } ->
        { Technique.node; mode })
      (Colock.Protocol.plan protocol ~txn node mode)
  | Whole_object -> (
    match containing_object graph node with
    | Some oid -> Baselines.Whole_object.plan graph ~oid mode
    | None -> Technique.with_ancestors graph node mode)
  | Tuple_level -> Baselines.Tuple_level.plan_node graph node mode

let compile graph technique specs =
  List.map
    (fun spec ->
      { Runner.arrival = spec.arrival;
        steps =
          List.map
            (fun op ->
              { Runner.plan = compile_op graph technique op;
                access_cost = spec.access_cost })
            spec.ops })
    specs

type mix = {
  jobs : int;
  read_fraction : float;
  library_update_fraction : float;
  arrival_gap : int;
  access_cost : int;
  steps_per_job : int;
  seed : int;
}

let default_mix =
  { jobs = 40; read_fraction = 0.5; library_update_fraction = 0.0;
    arrival_gap = 10; access_cost = 100; steps_per_job = 1; seed = 17 }

let manufacturing_mix db graph mix =
  let state = Random.State.make [| mix.seed |] in
  let cells_store =
    match Nf2.Database.relation db "cells" with
    | Some store -> store
    | None -> invalid_arg "Scenario: no cells relation"
  in
  let cell_keys = Array.of_list (Nf2.Relation.keys cells_store) in
  let effector_keys =
    match Nf2.Database.relation db "effectors" with
    | Some store -> Array.of_list (Nf2.Relation.keys store)
    | None -> [||]
  in
  let random_cell () =
    cell_keys.(Random.State.int state (Array.length cell_keys))
  in
  let cell_node key =
    match
      Graph.object_node graph (Nf2.Oid.make ~relation:"cells" ~key)
    with
    | Some node -> node
    | None -> invalid_arg "Scenario: unknown cell"
  in
  let random_robot_node () =
    let holu = Node_id.child (cell_node (random_cell ())) "robots" in
    let members = (Graph.node_exn graph holu).Graph.children in
    List.nth members (Random.State.int state (List.length members))
  in
  let random_op () =
    let dice = Random.State.float state 1.0 in
    if dice < mix.library_update_fraction && Array.length effector_keys > 0
    then
      let key =
        effector_keys.(Random.State.int state (Array.length effector_keys))
      in
      match
        Graph.object_node graph (Nf2.Oid.make ~relation:"effectors" ~key)
      with
      | Some node -> Node_update node
      | None -> invalid_arg "Scenario: unknown effector"
    else if dice < mix.library_update_fraction +. ((1.0 -. mix.library_update_fraction) *. mix.read_fraction)
    then Node_read (Node_id.child (cell_node (random_cell ())) "c_objects")
    else Node_update (random_robot_node ())
  in
  List.init mix.jobs (fun index ->
      { arrival = index * mix.arrival_gap;
        ops = List.init mix.steps_per_job (fun _step -> random_op ());
        access_cost = mix.access_cost })
