(** Query analysis: resolving variables against the catalog and deriving the
    access specifications that drive lock planning (§4.1: "each query to be
    processed is first analyzed to find out which attributes will be accessed
    and which kind of access will be done"). *)

type resolved_var = {
  name : string;
  relation : string;  (** root relation the variable ranges over *)
  path : Nf2.Path.t;  (** path from the relation's objects; root for [c IN cells] *)
}

type analysis = {
  ast : Ast.t;
  vars : resolved_var list;
  target : resolved_var;  (** the selected variable *)
  object_conditions : (Nf2.Path.t * Ast.literal) list;
      (** conditions restricting which complex objects qualify, as paths from
          the object root *)
  accesses : Colock.Access.t list;
      (** what to lock: one access for the selected variable *)
}

type error =
  | Unknown_relation of string
  | Unknown_variable of string
  | Unknown_attribute of { relation : string; path : Nf2.Path.t }
  | Not_a_collection of { relation : string; path : Nf2.Path.t }
  | Duplicate_variable of string

val pp_error : Format.formatter -> error -> unit

val analyze : Nf2.Catalog.t -> Ast.t -> (analysis, error) result
(** Variables bound by [v IN other.path] must range over collection
    attributes; every condition path must resolve to an atomic attribute. The
    access's predicate is the first condition path (used for selectivity
    estimation). *)
