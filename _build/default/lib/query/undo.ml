module Oid = Nf2.Oid
module Value = Nf2.Value
module Graph = Colock.Instance_graph

type record =
  | Replaced of { relation : string; before : Value.t }
  | Inserted of { oid : Oid.t }
  | Deleted of { relation : string; before : Value.t }

type t = {
  logs : (Lockmgr.Lock_table.txn_id, record list ref) Hashtbl.t;
      (* most recent first *)
}

let create () = { logs = Hashtbl.create 16 }

let attach undo executor =
  Executor.set_write_hook executor (fun txn write ->
      let record =
        match write with
        | Executor.Wrote_replace { relation; before } ->
          Replaced { relation; before }
        | Executor.Wrote_insert { oid } -> Inserted { oid }
        | Executor.Wrote_delete { relation; before } ->
          Deleted { relation; before }
      in
      match Hashtbl.find_opt undo.logs txn with
      | Some log -> log := record :: !log
      | None -> Hashtbl.replace undo.logs txn (ref [ record ]))

let note undo ~txn record =
  match Hashtbl.find_opt undo.logs txn with
  | Some log -> log := record :: !log
  | None -> Hashtbl.replace undo.logs txn (ref [ record ])

let pending undo ~txn =
  match Hashtbl.find_opt undo.logs txn with
  | Some log -> List.length !log
  | None -> 0

let forget undo ~txn = Hashtbl.remove undo.logs txn

let apply_record executor record =
  let db = Executor.database executor in
  let graph = Colock.Protocol.graph (Executor.protocol executor) in
  let catalog = Nf2.Database.catalog db in
  match record with
  | Replaced { relation; before } -> (
    (* value-level update: graph structure unchanged *)
    match Nf2.Database.replace db relation before with
    | Ok _oid -> Ok ()
    | Error db_error -> Error (Executor.Database_error db_error))
  | Inserted { oid } -> (
    match Graph.delete_object graph oid with
    | Error message -> Error (Executor.Graph_error message)
    | Ok () -> (
      match Nf2.Database.delete db oid with
      | Ok () -> Ok ()
      | Error db_error -> Error (Executor.Database_error db_error)))
  | Deleted { relation; before } -> (
    match Nf2.Database.insert db relation before with
    | Error db_error -> Error (Executor.Database_error db_error)
    | Ok oid -> (
      match Nf2.Catalog.find catalog relation with
      | None ->
        Error (Executor.Database_error (Nf2.Database.Unknown_relation relation))
      | Some schema -> (
        match
          Graph.insert_object graph catalog schema ~key:(Oid.key oid) before
        with
        | Ok _node -> Ok ()
        | Error message -> Error (Executor.Graph_error message))))

let rollback undo ~txn executor =
  match Hashtbl.find_opt undo.logs txn with
  | None -> Ok 0
  | Some log ->
    let rec undo_all count = function
      | [] ->
        Hashtbl.remove undo.logs txn;
        Ok count
      | record :: rest -> (
        match apply_record executor record with
        | Ok () ->
          log := rest;
          undo_all (count + 1) rest
        | Error _ as error -> error)
    in
    undo_all 0 !log
