(** Hand-written lexer and recursive-descent parser for the query dialect. *)

type error = { position : int; message : string }
(** [position] is a 0-based character offset into the input. *)

val pp_error : Format.formatter -> error -> unit

val parse : string -> (Ast.t, error) result
(** Keywords are case-insensitive; string literals are single-quoted. *)
