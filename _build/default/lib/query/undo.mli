(** Per-transaction undo logs: before-images for the executor's write
    operations, so an abort really rolls the database (and the instance
    graph) back.

    Strict 2PL makes this sound: until commit, the transaction holds X locks
    on everything it changed, so the before-images cannot have been
    overwritten by others. Records are applied last-in-first-out. *)

type t

val create : unit -> t

val attach : t -> Executor.t -> unit
(** Installs the executor's write hook so every successful write operation
    is recorded here automatically. *)

type record =
  | Replaced of { relation : string; before : Nf2.Value.t }
      (** an in-place object update; [before] is the prior version *)
  | Inserted of { oid : Nf2.Oid.t }  (** a fresh object: undo deletes it *)
  | Deleted of { relation : string; before : Nf2.Value.t }
      (** a removed object: undo re-inserts it *)

val note : t -> txn:Lockmgr.Lock_table.txn_id -> record -> unit

val pending : t -> txn:Lockmgr.Lock_table.txn_id -> int
(** Number of records that a rollback would apply. *)

val rollback :
  t -> txn:Lockmgr.Lock_table.txn_id -> Executor.t ->
  (int, Executor.error) result
(** Applies the transaction's records in reverse order against the executor's
    database and instance graph, then forgets them. Returns the number of
    records undone. On error the remaining records are kept (the database
    may be partially rolled back — a real system would escalate; here the
    error is surfaced for the caller). *)

val forget : t -> txn:Lockmgr.Lock_table.txn_id -> unit
(** Commit: drop the transaction's records. *)
