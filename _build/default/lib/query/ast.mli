(** Abstract syntax of the HDBL-like query dialect of the paper's Figure 3.

    The dialect covers what the paper's examples need:

    {v
    SELECT o FROM c IN cells, o IN c.c_objects
      WHERE c.cell_id = 'c1' FOR READ
    SELECT r FROM c IN cells, r IN c.robots
      WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE
    v}

    Variables range over relations or over (possibly nested) collection
    attributes of other variables; WHERE is a conjunction of equality
    comparisons between a variable path and a literal; the access clause is
    FOR READ / FOR UPDATE / FOR DELETE. *)

type source =
  | From_relation of string  (** [c IN cells] *)
  | From_path of string * Nf2.Path.t  (** [o IN c.c_objects] *)

type binding = { var : string; source : source }

type literal =
  | L_str of string
  | L_int of int
  | L_real of float
  | L_bool of bool

type condition = {
  cond_var : string;
  cond_path : Nf2.Path.t;  (** non-empty: [c.cell_id] has path [cell_id] *)
  value : literal;
}

type access_clause = For_read | For_update | For_delete

type t = {
  select : string;  (** the selected variable *)
  bindings : binding list;
  where : condition list;  (** conjunction; empty means all *)
  clause : access_clause;
}

val literal_to_value : literal -> Nf2.Value.t
val access_kind : access_clause -> Colock.Access.kind
val pp_literal : Format.formatter -> literal -> unit
val pp : Format.formatter -> t -> unit
(** Pretty-prints back to concrete syntax. *)
