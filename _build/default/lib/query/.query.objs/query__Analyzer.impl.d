lib/query/analyzer.ml: Ast Colock Format List Nf2 Result String
