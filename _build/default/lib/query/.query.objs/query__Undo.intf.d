lib/query/undo.mli: Executor Lockmgr Nf2
