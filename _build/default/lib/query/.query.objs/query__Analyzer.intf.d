lib/query/analyzer.mli: Ast Colock Format Nf2
