lib/query/ast.ml: Colock Format Nf2
