lib/query/executor.ml: Analyzer Ast Colock Format List Lockmgr Nf2 Option Parser Printf String
