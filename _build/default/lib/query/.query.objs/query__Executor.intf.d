lib/query/executor.mli: Analyzer Ast Colock Format Lockmgr Nf2 Parser
