lib/query/undo.ml: Colock Executor Hashtbl List Lockmgr Nf2
