lib/query/ast.mli: Colock Format Nf2
