lib/query/parser.ml: Ast Char Format List Nf2 Printf String
