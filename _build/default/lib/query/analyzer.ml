type resolved_var = {
  name : string;
  relation : string;
  path : Nf2.Path.t;
}

type analysis = {
  ast : Ast.t;
  vars : resolved_var list;
  target : resolved_var;
  object_conditions : (Nf2.Path.t * Ast.literal) list;
  accesses : Colock.Access.t list;
}

type error =
  | Unknown_relation of string
  | Unknown_variable of string
  | Unknown_attribute of { relation : string; path : Nf2.Path.t }
  | Not_a_collection of { relation : string; path : Nf2.Path.t }
  | Duplicate_variable of string

let pp_error formatter = function
  | Unknown_relation name ->
    Format.fprintf formatter "unknown relation %S" name
  | Unknown_variable name ->
    Format.fprintf formatter "unknown variable %S" name
  | Unknown_attribute { relation; path } ->
    Format.fprintf formatter "relation %S has no attribute %a" relation
      Nf2.Path.pp path
  | Not_a_collection { relation; path } ->
    Format.fprintf formatter "%s.%a is not a collection" relation Nf2.Path.pp
      path
  | Duplicate_variable name ->
    Format.fprintf formatter "variable %S bound twice" name

let join base extension =
  Nf2.Path.of_list (Nf2.Path.to_list base @ Nf2.Path.to_list extension)

let analyze catalog ast =
  let ( let* ) = Result.bind in
  let resolve_binding vars { Ast.var; source } =
    let* vars = vars in
    let* () =
      if List.exists (fun resolved -> String.equal resolved.name var) vars then
        Error (Duplicate_variable var)
      else Ok ()
    in
    match source with
    | Ast.From_relation relation -> (
      match Nf2.Catalog.find catalog relation with
      | None -> Error (Unknown_relation relation)
      | Some _schema ->
        Ok ({ name = var; relation; path = Nf2.Path.root } :: vars))
    | Ast.From_path (base_var, extension) -> (
      match
        List.find_opt (fun resolved -> String.equal resolved.name base_var) vars
      with
      | None -> Error (Unknown_variable base_var)
      | Some base -> (
        let path = join base.path extension in
        match Nf2.Catalog.find catalog base.relation with
        | None -> Error (Unknown_relation base.relation)
        | Some schema -> (
          match Nf2.Schema.find_attr schema path with
          | None ->
            Error (Unknown_attribute { relation = base.relation; path })
          | Some (Nf2.Schema.Set _ | Nf2.Schema.List _) ->
            Ok ({ name = var; relation = base.relation; path } :: vars)
          | Some (Nf2.Schema.Atomic _ | Nf2.Schema.Tuple _) ->
            Error (Not_a_collection { relation = base.relation; path }))))
  in
  let* vars_reversed =
    List.fold_left resolve_binding (Ok []) ast.Ast.bindings
  in
  let vars = List.rev vars_reversed in
  let* target =
    match
      List.find_opt (fun resolved -> String.equal resolved.name ast.Ast.select) vars
    with
    | Some target -> Ok target
    | None -> Error (Unknown_variable ast.Ast.select)
  in
  (* Resolve conditions to object-rooted paths and check they are atomic. *)
  let resolve_condition conditions { Ast.cond_var; cond_path; value } =
    let* conditions = conditions in
    match
      List.find_opt (fun resolved -> String.equal resolved.name cond_var) vars
    with
    | None -> Error (Unknown_variable cond_var)
    | Some base -> (
      let path = join base.path cond_path in
      match Nf2.Catalog.find catalog base.relation with
      | None -> Error (Unknown_relation base.relation)
      | Some schema -> (
        match Nf2.Schema.find_attr schema path with
        | Some (Nf2.Schema.Atomic _) -> Ok ((path, value) :: conditions)
        | Some (Nf2.Schema.Set _ | Nf2.Schema.List _ | Nf2.Schema.Tuple _) | None
          ->
          Error (Unknown_attribute { relation = base.relation; path })))
  in
  let* conditions_reversed =
    List.fold_left resolve_condition (Ok []) ast.Ast.where
  in
  let object_conditions = List.rev conditions_reversed in
  let predicate =
    match object_conditions with
    | (path, _value) :: _ -> Some path
    | [] -> None
  in
  let accesses =
    [ Colock.Access.make ?predicate ~target:target.path
        (Ast.access_kind ast.Ast.clause)
        target.relation ]
  in
  Ok { ast; vars; target; object_conditions; accesses }
