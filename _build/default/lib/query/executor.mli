(** Query execution over an [Nf2] database, locking through the paper's
    protocol (§4.1): analyze, build the query-specific lock graph, request
    the planned locks during evaluation, then hand rows back.

    Lock placement follows the paper's examples: a condition that pins
    members of the selected collection (Q2's [r.robot_id = 'r1']) locks the
    matching member nodes individually (Fig. 7 locks "robot r1", not the
    whole list); otherwise the granule chosen by escalation anticipation is
    used. Locks stay held until the caller ends the transaction through
    {!Colock.Protocol} (strict two-phase locking). *)

type t

val create : ?threshold:int -> Nf2.Database.t -> Colock.Protocol.t -> t
(** [threshold] is the escalation threshold for lock planning (default 16).
    Statistics are computed eagerly; call {!refresh_statistics} after bulk
    loads. *)

val database : t -> Nf2.Database.t
val protocol : t -> Colock.Protocol.t
val refresh_statistics : t -> unit

type write =
  | Wrote_replace of { relation : string; before : Nf2.Value.t }
  | Wrote_insert of { oid : Nf2.Oid.t }
  | Wrote_delete of { relation : string; before : Nf2.Value.t }
      (** successful write operations, with before-images where applicable *)

val set_write_hook :
  t -> (Lockmgr.Lock_table.txn_id -> write -> unit) -> unit
(** Installs the (single) write observer — {!Undo.attach} uses this to
    collect before-images for rollback. *)

type row = {
  oid : Nf2.Oid.t;  (** the complex object the row belongs to *)
  node : Colock.Node_id.t;  (** instance node of the selected (sub-)value *)
  value : Nf2.Value.t;
}

type result_set = {
  rows : row list;
  plan : Colock.Query_graph.t;
  locks_requested : int;  (** explicit lock requests issued for this query *)
  used_index : bool;
      (** an equality condition was answered from a secondary index instead
          of a relation scan *)
}

type error =
  | Parse_error of Parser.error
  | Analysis_error of Analyzer.error
  | Blocked of {
      node : Colock.Node_id.t;
      blockers : Lockmgr.Lock_table.txn_id list;
      waiting : bool;  (** true: enqueued (retry later); false: try-only *)
    }
  | Database_error of Nf2.Database.error
  | Graph_error of string  (** incremental instance-graph maintenance *)

val pp_error : Format.formatter -> error -> unit

val run :
  t -> txn:Lockmgr.Lock_table.txn_id -> ?wait:bool -> Ast.t ->
  (result_set, error) result
(** [wait] (default true) chooses between queueing on conflict and try-only
    acquisition. On [Blocked] with [waiting = true] the transaction sits in
    the lock queue; re-invoke [run] once the blocker releases (already-held
    locks are no-ops). *)

val run_string :
  t -> txn:Lockmgr.Lock_table.txn_id -> ?wait:bool -> string ->
  (result_set, error) result

val insert_object :
  t -> txn:Lockmgr.Lock_table.txn_id -> ?wait:bool -> string -> Nf2.Value.t ->
  (Nf2.Oid.t, error) result
(** Inserts a complex object under the protocol: IX down to the relation
    node, X on the new object's (future) node, then the database insert and
    incremental instance-graph maintenance. A scan that S-locked the
    relation node therefore blocks the insert — phantom protection at
    relation granularity (finer-granule phantom protection is the paper's
    §5 future work). *)

val delete_object :
  t -> txn:Lockmgr.Lock_table.txn_id -> ?wait:bool -> Nf2.Oid.t ->
  (unit, error) result
(** Deletes a complex object under an X lock on its node (with the usual
    propagations). Refused while other objects still reference it. *)

val apply_update :
  t -> txn:Lockmgr.Lock_table.txn_id -> row ->
  (Nf2.Value.t -> Nf2.Value.t) ->
  (unit, Nf2.Database.error) result
(** Replaces the row's selected sub-value inside its complex object and writes
    the object back (typechecked). The caller must have run the query FOR
    UPDATE, so the row's node is X-locked. The update must preserve
    structure (member counts, reference targets); structural changes require
    rebuilding the instance graph. *)
