type error = { position : int; message : string }

let pp_error formatter { position; message } =
  Format.fprintf formatter "parse error at offset %d: %s" position message

type token =
  | T_ident of string  (** possibly dotted: "c.robots.robot_id" *)
  | T_string of string
  | T_int of int
  | T_real of float
  | T_comma
  | T_equals
  | T_eof

let token_text = function
  | T_ident text -> Printf.sprintf "identifier %S" text
  | T_string text -> Printf.sprintf "string '%s'" text
  | T_int number -> string_of_int number
  | T_real number -> string_of_float number
  | T_comma -> "','"
  | T_equals -> "'='"
  | T_eof -> "end of input"

exception Parse_failure of error

let fail position message = raise (Parse_failure { position; message })

(* ------------------------------------------------------------------ Lexer *)

let is_ident_start ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || Char.equal ch '_'

let is_ident_char ch = is_ident_start ch || (ch >= '0' && ch <= '9')
let is_digit ch = ch >= '0' && ch <= '9'

let tokenize input =
  let length = String.length input in
  let tokens = ref [] in
  let emit position token = tokens := (position, token) :: !tokens in
  let rec scan position =
    if position >= length then emit position T_eof
    else
      match input.[position] with
      | ' ' | '\t' | '\n' | '\r' -> scan (position + 1)
      | ',' ->
        emit position T_comma;
        scan (position + 1)
      | '=' ->
        emit position T_equals;
        scan (position + 1)
      | '\'' ->
        let rec find_close cursor =
          if cursor >= length then fail position "unterminated string literal"
          else if Char.equal input.[cursor] '\'' then cursor
          else find_close (cursor + 1)
        in
        let close = find_close (position + 1) in
        emit position (T_string (String.sub input (position + 1) (close - position - 1)));
        scan (close + 1)
      | ch when is_digit ch ->
        let rec span cursor seen_dot =
          if cursor < length && is_digit input.[cursor] then
            span (cursor + 1) seen_dot
          else if
            cursor + 1 < length
            && Char.equal input.[cursor] '.'
            && is_digit input.[cursor + 1]
            && not seen_dot
          then span (cursor + 1) true
          else (cursor, seen_dot)
        in
        let stop, is_real = span position false in
        let text = String.sub input position (stop - position) in
        if is_real then emit position (T_real (float_of_string text))
        else emit position (T_int (int_of_string text));
        scan stop
      | ch when is_ident_start ch ->
        (* dotted identifier: segments separated by '.' *)
        let rec span cursor =
          if cursor < length && is_ident_char input.[cursor] then
            span (cursor + 1)
          else if
            cursor + 1 < length
            && Char.equal input.[cursor] '.'
            && is_ident_start input.[cursor + 1]
          then span (cursor + 2)
          else cursor
        in
        let stop = span position in
        emit position (T_ident (String.sub input position (stop - position)));
        scan stop
      | ch -> fail position (Printf.sprintf "unexpected character %C" ch)
  in
  scan 0;
  List.rev !tokens

(* ----------------------------------------------------------------- Parser *)

type stream = { mutable tokens : (int * token) list }

let peek stream =
  match stream.tokens with
  | [] -> (0, T_eof)
  | head :: _ -> head

let advance stream =
  match stream.tokens with
  | [] -> ()
  | _ :: rest -> stream.tokens <- rest

let keyword_of text = String.lowercase_ascii text

let expect_keyword stream name =
  let position, token = peek stream in
  match token with
  | T_ident text when String.equal (keyword_of text) name -> advance stream
  | _ ->
    fail position
      (Printf.sprintf "expected keyword %s, found %s" (String.uppercase_ascii name)
         (token_text token))

let expect_plain_ident stream what =
  let position, token = peek stream in
  match token with
  | T_ident text when not (String.contains text '.') ->
    advance stream;
    text
  | _ ->
    fail position (Printf.sprintf "expected %s, found %s" what (token_text token))

let reserved =
  [ "select"; "from"; "in"; "where"; "and"; "for"; "read"; "update"; "delete" ]

let check_not_reserved position name =
  if List.mem (keyword_of name) reserved then
    fail position (Printf.sprintf "%S is a reserved word" name)

let split_dotted text =
  match String.split_on_char '.' text with
  | [] -> ("", [])
  | var :: path -> (var, path)

let parse_binding stream =
  let position, _token = peek stream in
  let var = expect_plain_ident stream "a variable name" in
  check_not_reserved position var;
  expect_keyword stream "in";
  let source_position, token = peek stream in
  match token with
  | T_ident text ->
    advance stream;
    let head, path = split_dotted text in
    if path = [] then { Ast.var; source = Ast.From_relation head }
    else { Ast.var; source = Ast.From_path (head, Nf2.Path.of_list path) }
  | _ ->
    fail source_position
      (Printf.sprintf "expected a relation or variable path, found %s"
         (token_text token))

let parse_literal stream =
  let position, token = peek stream in
  match token with
  | T_string text ->
    advance stream;
    Ast.L_str text
  | T_int number ->
    advance stream;
    Ast.L_int number
  | T_real number ->
    advance stream;
    Ast.L_real number
  | T_ident text when String.equal (keyword_of text) "true" ->
    advance stream;
    Ast.L_bool true
  | T_ident text when String.equal (keyword_of text) "false" ->
    advance stream;
    Ast.L_bool false
  | _ ->
    fail position
      (Printf.sprintf "expected a literal, found %s" (token_text token))

let parse_condition stream =
  let position, token = peek stream in
  match token with
  | T_ident text when String.contains text '.' ->
    advance stream;
    let var, path = split_dotted text in
    let equals_position, equals = peek stream in
    (match equals with
     | T_equals -> advance stream
     | _ ->
       fail equals_position
         (Printf.sprintf "expected '=', found %s" (token_text equals)));
    let value = parse_literal stream in
    { Ast.cond_var = var; cond_path = Nf2.Path.of_list path; value }
  | _ ->
    fail position
      (Printf.sprintf "expected a qualified attribute (var.path), found %s"
         (token_text token))

let parse_clause stream =
  expect_keyword stream "for";
  let position, token = peek stream in
  match token with
  | T_ident text -> (
    advance stream;
    match keyword_of text with
    | "read" -> Ast.For_read
    | "update" -> Ast.For_update
    | "delete" -> Ast.For_delete
    | other -> fail position (Printf.sprintf "unknown access clause %S" other))
  | _ ->
    fail position
      (Printf.sprintf "expected READ, UPDATE or DELETE, found %s"
         (token_text token))

let rec parse_separated stream parse_one =
  let first = parse_one stream in
  match peek stream with
  | _, T_comma ->
    advance stream;
    first :: parse_separated stream parse_one
  | _, _ -> [ first ]

let rec parse_and_separated stream parse_one =
  let first = parse_one stream in
  match peek stream with
  | _, T_ident text when String.equal (keyword_of text) "and" ->
    advance stream;
    first :: parse_and_separated stream parse_one
  | _, _ -> [ first ]

let parse input =
  match
    let stream = { tokens = tokenize input } in
    expect_keyword stream "select";
    let select_position, _token = peek stream in
    let select = expect_plain_ident stream "the selected variable" in
    check_not_reserved select_position select;
    expect_keyword stream "from";
    let bindings = parse_separated stream parse_binding in
    let where =
      match peek stream with
      | _, T_ident text when String.equal (keyword_of text) "where" ->
        advance stream;
        parse_and_separated stream parse_condition
      | _, _ -> []
    in
    let clause = parse_clause stream in
    let position, token = peek stream in
    (match token with
     | T_eof -> ()
     | _ ->
       fail position
         (Printf.sprintf "trailing input: %s" (token_text token)));
    { Ast.select; bindings; where; clause }
  with
  | ast -> Ok ast
  | exception Parse_failure error -> Error error
