type source = From_relation of string | From_path of string * Nf2.Path.t
type binding = { var : string; source : source }

type literal = L_str of string | L_int of int | L_real of float | L_bool of bool

type condition = {
  cond_var : string;
  cond_path : Nf2.Path.t;
  value : literal;
}

type access_clause = For_read | For_update | For_delete

type t = {
  select : string;
  bindings : binding list;
  where : condition list;
  clause : access_clause;
}

let literal_to_value = function
  | L_str text -> Nf2.Value.Str text
  | L_int number -> Nf2.Value.Int number
  | L_real number -> Nf2.Value.Real number
  | L_bool flag -> Nf2.Value.Bool flag

let access_kind = function
  | For_read -> Colock.Access.Read
  | For_update -> Colock.Access.Update
  | For_delete -> Colock.Access.Delete

let pp_literal formatter = function
  | L_str text -> Format.fprintf formatter "'%s'" text
  | L_int number -> Format.pp_print_int formatter number
  | L_real number -> Format.pp_print_float formatter number
  | L_bool flag -> Format.pp_print_bool formatter flag

let pp_source formatter = function
  | From_relation relation -> Format.pp_print_string formatter relation
  | From_path (var, path) ->
    Format.fprintf formatter "%s.%a" var Nf2.Path.pp path

let pp formatter { select; bindings; where; clause } =
  let pp_binding formatter { var; source } =
    Format.fprintf formatter "%s IN %a" var pp_source source
  in
  let pp_condition formatter { cond_var; cond_path; value } =
    Format.fprintf formatter "%s.%a = %a" cond_var Nf2.Path.pp cond_path
      pp_literal value
  in
  Format.fprintf formatter "SELECT %s FROM %a" select
    (Format.pp_print_list
       ~pp_sep:(fun formatter () -> Format.pp_print_string formatter ", ")
       pp_binding)
    bindings;
  (match where with
   | [] -> ()
   | _ :: _ ->
     Format.fprintf formatter " WHERE %a"
       (Format.pp_print_list
          ~pp_sep:(fun formatter () -> Format.pp_print_string formatter " AND ")
          pp_condition)
       where);
  Format.fprintf formatter " FOR %s"
    (match clause with
     | For_read -> "READ"
     | For_update -> "UPDATE"
     | For_delete -> "DELETE")
