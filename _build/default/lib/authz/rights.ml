type txn_id = int

type t = {
  default_modifiable : bool;
  relation_defaults : (string, bool) Hashtbl.t;
  per_txn : (txn_id * string, bool) Hashtbl.t;
}

let create ?(default_modifiable = true) () =
  { default_modifiable; relation_defaults = Hashtbl.create 16;
    per_txn = Hashtbl.create 64 }

let grant_modify rights ~txn ~relation =
  Hashtbl.replace rights.per_txn (txn, relation) true

let revoke_modify rights ~txn ~relation =
  Hashtbl.replace rights.per_txn (txn, relation) false

let set_relation_default rights ~relation modifiable =
  Hashtbl.replace rights.relation_defaults relation modifiable

let may_modify rights ~txn ~relation =
  match Hashtbl.find_opt rights.per_txn (txn, relation) with
  | Some decision -> decision
  | None -> (
    match Hashtbl.find_opt rights.relation_defaults relation with
    | Some decision -> decision
    | None -> rights.default_modifiable)

let forget_txn rights ~txn =
  let stale =
    Hashtbl.fold
      (fun ((owner, _relation) as key) _decision accu ->
        if owner = txn then key :: accu else accu)
      rights.per_txn []
  in
  List.iter (Hashtbl.remove rights.per_txn) stale

let all_modifiable = create ()
