lib/authz/rights.mli:
