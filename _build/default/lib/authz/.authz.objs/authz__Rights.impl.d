lib/authz/rights.ml: Hashtbl List
