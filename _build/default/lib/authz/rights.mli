(** The authorization component.

    §3.2.3: "a close cooperation of the concurrency control component and the
    authorization component ... can drastically increase the degree of
    concurrency". Rule 4′ asks, per transaction, whether a unit (identified
    here by the relation owning it) is *modifiable*; if not, downward
    propagation may weaken X to S on that unit's entry point.

    Rights are per transaction and per relation; the default policy is
    configurable so both "everything modifiable" (plain rule 4) and
    "libraries read-only" setups are easy to express. *)

type txn_id = int
type t

val create : ?default_modifiable:bool -> unit -> t
(** [default_modifiable] applies where no explicit right was granted or
    revoked (default [true], which makes rule 4′ coincide with rule 4). *)

val grant_modify : t -> txn:txn_id -> relation:string -> unit
val revoke_modify : t -> txn:txn_id -> relation:string -> unit

val set_relation_default : t -> relation:string -> bool -> unit
(** Relation-wide default (e.g. mark the "effectors" library read-only for
    everyone); per-transaction grants/revocations take precedence. *)

val may_modify : t -> txn:txn_id -> relation:string -> bool
val forget_txn : t -> txn:txn_id -> unit
(** Drops per-transaction rights at end of transaction. *)

val all_modifiable : t
(** Shared read-write-for-everyone instance (plain rule 4 behaviour). *)
