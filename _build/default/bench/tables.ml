(* Minimal aligned-table printing for the experiment harness. *)

type cell = Text of string | Int of int | Float of float

let render_cell = function
  | Text text -> text
  | Int number -> string_of_int number
  | Float number ->
    if Float.is_integer number && Float.abs number < 1e9 then
      Printf.sprintf "%.0f" number
    else Printf.sprintf "%.2f" number

let print ~title ~header rows =
  Printf.printf "\n--- %s ---\n" title;
  let rendered = List.map (List.map render_cell) rows in
  let widths =
    List.fold_left
      (fun widths row ->
        List.mapi
          (fun column text ->
            let current = try List.nth widths column with _ -> 0 in
            max current (String.length text))
          row)
      (List.map String.length header)
      rendered
  in
  let print_row cells =
    List.iteri
      (fun column text ->
        let width = List.nth widths column in
        if column = 0 then Printf.printf "%-*s" width text
        else Printf.printf "  %*s" width text)
      cells;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun width -> String.make width '-') widths);
  List.iter print_row rendered

let note text = Printf.printf "%s\n" text
