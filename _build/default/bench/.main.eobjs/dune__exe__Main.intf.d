bench/main.mli:
