bench/experiments.ml: Authz Baselines Colock Format List Lockmgr Nf2 Option Printf Query Random Sim Tables Workload
