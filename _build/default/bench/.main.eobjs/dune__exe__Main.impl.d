bench/main.ml: Analyze Array Authz Baselines Bechamel Benchmark Colock Experiments Float Hashtbl Instance List Lockmgr Measure Nf2 Option Printf Query Sim Staged String Sys Test Time Toolkit Workload
