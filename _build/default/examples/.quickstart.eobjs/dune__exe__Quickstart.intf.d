examples/quickstart.mli:
