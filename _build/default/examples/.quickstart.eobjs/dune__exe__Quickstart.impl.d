examples/quickstart.ml: Authz Colock Format List Lockmgr Nf2 Printf Query Workload
