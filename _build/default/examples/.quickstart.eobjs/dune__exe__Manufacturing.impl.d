examples/manufacturing.ml: Colock List Lockmgr Printf Sim Workload
