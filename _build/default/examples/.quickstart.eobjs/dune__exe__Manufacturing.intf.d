examples/manufacturing.mli:
