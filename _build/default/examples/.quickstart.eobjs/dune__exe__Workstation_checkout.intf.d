examples/workstation_checkout.mli:
