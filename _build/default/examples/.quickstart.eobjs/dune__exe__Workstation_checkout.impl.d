examples/workstation_checkout.ml: Colock Filename Format List Lockmgr Nf2 Option Printf String Sys Txn Workload
