examples/part_library.ml: Authz Colock List Lockmgr Option Printf String Txn Workload
