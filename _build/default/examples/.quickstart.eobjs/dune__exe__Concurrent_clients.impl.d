examples/concurrent_clients.ml: Atomic Colock Domain List Lockmgr Option Printf Unix Workload
