examples/part_library.mli:
