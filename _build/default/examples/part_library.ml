(* A part library with common data and authorization (§3.2.3 / rule 4').

   Engineers update robots that reference shared effectors; a librarian
   occasionally updates the effector library itself. Engineers have no
   right to modify the library, so under rule 4' their X locks on robots
   weaken to S on the referenced effectors — two engineers sharing a tool
   proceed concurrently, while the librarian's library update correctly
   waits for both.

   Run with: dune exec examples/part_library.exe *)

module Mode = Lockmgr.Lock_mode
module Table = Lockmgr.Lock_table
module Node_id = Colock.Node_id

let () =
  let db = Workload.Figure1.database () in
  let graph = Colock.Instance_graph.build db in
  let table = Table.create () in
  let rights = Authz.Rights.create () in
  let protocol = Colock.Protocol.create ~rights graph table in
  let manager = Txn.Txn_manager.create protocol in

  (* Engineers T1, T2 may not modify the library; librarian T3 may. *)
  let engineer_1 = Txn.Txn_manager.begin_txn manager in
  let engineer_2 = Txn.Txn_manager.begin_txn manager in
  let librarian = Txn.Txn_manager.begin_txn manager in
  Authz.Rights.revoke_modify rights ~txn:engineer_1.Txn.Transaction.id
    ~relation:"effectors";
  Authz.Rights.revoke_modify rights ~txn:engineer_2.Txn.Transaction.id
    ~relation:"effectors";

  let node steps = Option.get (Node_id.of_steps steps) in
  let r1 = node [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r1" ] in
  let r2 = node [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r2" ] in
  let e2 = node [ "db1"; "seg2"; "effectors"; "e2" ] in

  let show label txn outcome =
    Printf.printf "%-34s -> %s\n" label
      (match outcome with
       | Txn.Txn_manager.Granted -> "granted"
       | Txn.Txn_manager.Waiting { node; blockers } ->
         Printf.sprintf "waits on %s (blocked by %s)"
           (Node_id.to_resource node)
           (String.concat "," (List.map string_of_int blockers))
       | Txn.Txn_manager.Deadlock_victim -> "deadlock victim");
    ignore txn
  in

  print_endline "both engineers update robots sharing effector e2:";
  show "  engineer 1: X robot r1" engineer_1
    (Txn.Txn_manager.acquire manager engineer_1 r1 Mode.X);
  show "  engineer 2: X robot r2" engineer_2
    (Txn.Txn_manager.acquire manager engineer_2 r2 Mode.X);
  Printf.printf "  e2 holders: %s\n\n"
    (String.concat ", "
       (List.map
          (fun (txn, mode) -> Printf.sprintf "T%d:%s" txn (Mode.to_string mode))
          (Table.holders table ~resource:"db1/seg2/effectors/e2")));

  print_endline "the librarian wants to replace effector e2:";
  show "  librarian: X effector e2" librarian
    (Txn.Txn_manager.acquire manager librarian e2 Mode.X);

  print_endline "\nengineer 1 finishes; librarian still waits for engineer 2:";
  let grants = Txn.Txn_manager.commit manager engineer_1 in
  Printf.printf "  engineer 1 committed (%d grant notifications)\n"
    (List.length grants);

  print_endline "engineer 2 finishes; the librarian's X lock is granted:";
  let grants = Txn.Txn_manager.commit manager engineer_2 in
  let woken = Txn.Txn_manager.unblocked manager grants in
  List.iter
    (fun txn -> Printf.printf "  T%d resumes\n" txn.Txn.Transaction.id)
    woken;
  (match Txn.Txn_manager.acquire manager librarian e2 Mode.X with
   | Txn.Txn_manager.Granted ->
     Printf.printf "  librarian now holds e2 in %s\n"
       (Mode.to_string
          (Table.held table ~txn:librarian.Txn.Transaction.id
             ~resource:"db1/seg2/effectors/e2"))
   | Txn.Txn_manager.Waiting _ | Txn.Txn_manager.Deadlock_victim ->
     print_endline "  unexpected: librarian still blocked");
  let (_ : Table.grant list) = Txn.Txn_manager.commit manager librarian in
  print_endline "\nfrom-the-side access to common data is synchronized, yet";
  print_endline "read-only use of the library never blocks other readers."
