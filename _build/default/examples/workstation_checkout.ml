(* Workstation-server check-out/check-in with long locks (§1, §3.1).

   A designer checks cell c1 out to a workstation for update (long X lock),
   edits the private copy, survives a server shutdown (the long lock is
   saved and restored), checks the changed object back in, and releases
   the session. A colleague's conflicting check-out attempt is refused for
   the whole duration.

   Run with: dune exec examples/workstation_checkout.exe *)

module Table = Lockmgr.Lock_table
module Value = Nf2.Value

let step = ref 0

let banner text =
  incr step;
  Printf.printf "\n%d. %s\n" !step text

let () =
  let lock_file = Filename.temp_file "colock_demo_locks" ".txt" in
  let db = Workload.Figure1.database () in
  let graph = Colock.Instance_graph.build db in
  let c1 = Nf2.Oid.make ~relation:"cells" ~key:"c1" in

  banner "designer checks out cell c1 for update (long lock)";
  let table = Table.create () in
  let protocol = Colock.Protocol.create graph table in
  let manager = Txn.Txn_manager.create protocol in
  let checkout = Txn.Checkout.create ~lock_file manager db in
  let designer = Txn.Txn_manager.begin_txn ~kind:Txn.Transaction.Long manager in
  (match Txn.Checkout.check_out checkout designer c1 ~mode:`Update with
   | Ok value ->
     Format.printf "   private copy: %a@." Nf2.Value.pp value
   | Error error -> Format.printf "   failed: %a@." Txn.Checkout.pp_error error);

  banner "a colleague tries to check the same cell out";
  let colleague = Txn.Txn_manager.begin_txn ~kind:Txn.Transaction.Long manager in
  (match Txn.Checkout.check_out checkout colleague c1 ~mode:`Update with
   | Ok _ -> print_endline "   unexpected success"
   | Error error -> Format.printf "   refused: %a@." Txn.Checkout.pp_error error);

  banner "the designer edits the private copy on the workstation";
  let edited =
    match Txn.Checkout.local_copy checkout designer c1 with
    | Some (Value.Tuple bindings) ->
      Value.Tuple
        (List.map
           (fun (field, sub) ->
             if String.equal field "robots" then
               match sub with
               | Value.List robots ->
                 ( field,
                   Value.List
                     (List.map
                        (fun robot ->
                          match robot with
                          | Value.Tuple robot_fields ->
                            Value.Tuple
                              (List.map
                                 (fun (rf, rv) ->
                                   if String.equal rf "trajectory" then
                                     (rf, Value.Str "re-planned")
                                   else (rf, rv))
                                 robot_fields)
                          | other -> other)
                        robots) )
               | other -> (field, other)
             else (field, sub))
           bindings)
    | Some other -> other
    | None -> failwith "no local copy"
  in
  (match Txn.Checkout.update_local checkout designer c1 edited with
   | Ok () -> print_endline "   local copy updated (trajectories re-planned)"
   | Error error -> Format.printf "   failed: %a@." Txn.Checkout.pp_error error);

  banner "server shutdown: long locks are persisted";
  Txn.Checkout.save_locks checkout;
  Printf.printf "   saved to %s\n" lock_file;

  banner "server restart: fresh lock table, locks restored from disk";
  let table2 = Table.create () in
  let protocol2 = Colock.Protocol.create graph table2 in
  let manager2 = Txn.Txn_manager.create protocol2 in
  let checkout2 = Txn.Checkout.create ~lock_file manager2 db in
  let restored = Txn.Checkout.restore_locks checkout2 in
  Printf.printf "   %d long lock(s) restored\n" restored;

  banner "the colleague tries again after the restart";
  let colleague2 =
    { colleague with Txn.Transaction.id = 77; status = Txn.Transaction.Active }
  in
  (match Txn.Checkout.check_out checkout2 colleague2 c1 ~mode:`Update with
   | Ok _ -> print_endline "   unexpected success"
   | Error error ->
     Format.printf "   still refused: %a@." Txn.Checkout.pp_error error);

  banner "the designer checks the changed cell back in";
  (* The designer's private copy lives in the first checkout manager; the
     check-in happens against the (shared) central database. *)
  (match Txn.Checkout.check_in checkout designer c1 with
   | Ok () ->
     let stored = Option.get (Nf2.Database.deref db c1) in
     Format.printf "   central copy now: %a@." Nf2.Value.pp stored
   | Error error -> Format.printf "   failed: %a@." Txn.Checkout.pp_error error);

  banner "the designer ends the session; all locks are released";
  let (_ : Table.grant list) = Txn.Checkout.finish_session checkout designer in
  Printf.printf "   locks held by designer: %d\n"
    (List.length (Table.locks_of table ~txn:designer.Txn.Transaction.id));
  Sys.remove lock_file
