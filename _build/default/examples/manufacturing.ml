(* Manufacturing cells under concurrent load.

   Generates a manufacturing database (cells sharing an effector library),
   then runs the same mixed workload — engineers reading cell objects and
   updating robots — under three lock techniques, printing the comparison
   the paper argues qualitatively in §3/§4.6.

   Run with: dune exec examples/manufacturing.exe *)

let () =
  let parameters =
    { Workload.Generator.cells = 8; objects_per_cell = 40;
      robots_per_cell = 4; effectors = 12; effectors_per_robot = 2; seed = 7 }
  in
  let db = Workload.Generator.manufacturing parameters in
  let graph = Colock.Instance_graph.build db in
  Printf.printf
    "database: %d cells x %d objects, %d robots each, %d shared effectors\n\
     instance lock graph: %d lockable units\n\n"
    parameters.Workload.Generator.cells
    parameters.Workload.Generator.objects_per_cell
    parameters.Workload.Generator.robots_per_cell
    parameters.Workload.Generator.effectors
    (Colock.Instance_graph.node_count graph);
  let mix =
    { Sim.Scenario.default_mix with jobs = 80; arrival_gap = 4;
      read_fraction = 0.6; seed = 99 }
  in
  let specs = Sim.Scenario.manufacturing_mix db graph mix in
  let run technique_of_table =
    let table = Lockmgr.Lock_table.create () in
    let technique = technique_of_table table in
    let jobs = Sim.Scenario.compile graph technique specs in
    (Sim.Scenario.technique_name technique, Sim.Runner.run ~table jobs)
  in
  let results =
    [ run (fun table ->
          Sim.Scenario.Proposed (Colock.Protocol.create graph table));
      run (fun _table -> Sim.Scenario.Whole_object);
      run (fun _table -> Sim.Scenario.Tuple_level) ]
  in
  Printf.printf "%-22s %9s %9s %9s %9s %9s %9s\n" "technique" "committed"
    "makespan" "thruput" "avg resp" "waits" "locks";
  List.iter
    (fun (name, metrics) ->
      Printf.printf "%-22s %9d %9d %9.2f %9.1f %9d %9d\n" name
        metrics.Sim.Metrics.committed metrics.Sim.Metrics.makespan
        (Sim.Metrics.throughput metrics)
        (Sim.Metrics.avg_response metrics)
        metrics.Sim.Metrics.total_wait metrics.Sim.Metrics.lock_requests)
    results;
  print_newline ();
  print_endline
    "whole-object locking serializes readers against robot updates in the\n\
     same cell; tuple-level locking needs an order of magnitude more lock\n\
     requests; the proposed sub-object granules get both right."
