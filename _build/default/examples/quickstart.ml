(* Quickstart: the paper's running example end to end.

   Builds the Figure 1 database (cells / effectors), prints the derived
   object-specific lock graph (Figure 5), runs the three queries of Figure 3
   through the locking executor, and prints the lock table — reproducing the
   lock sets of Figure 7.

   Run with: dune exec examples/quickstart.exe *)

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let () =
  section "1. The Figure 1 database";
  let db = Workload.Figure1.database () in
  List.iter
    (fun store ->
      Format.printf "%a@." Nf2.Schema.pp_relation (Nf2.Relation.schema store))
    (Nf2.Database.relations db);

  section "2. Object-specific lock graph of relation \"cells\" (Figure 5)";
  let cells_graph =
    Colock.Object_graph.of_relation ~database:"db1"
      Workload.Figure1.cells_schema
  in
  Format.printf "%a@." Colock.Object_graph.pp cells_graph;

  section "3. Executing Q1, Q2, Q3 (Figure 3)";
  let graph = Colock.Instance_graph.build db in
  let table = Lockmgr.Lock_table.create () in
  let rights = Authz.Rights.create () in
  (* Workstation users may not change the effector library (rule 4'). *)
  Authz.Rights.set_relation_default rights ~relation:"effectors" false;
  let protocol = Colock.Protocol.create ~rights graph table in
  let executor = Query.Executor.create db protocol in
  let run txn text =
    Printf.printf "T%d: %s\n" txn text;
    match Query.Executor.run_string executor ~txn text with
    | Ok result ->
      Printf.printf "  -> %d row(s), %d lock request(s)\n"
        (List.length result.Query.Executor.rows)
        result.Query.Executor.locks_requested;
      List.iter
        (fun row ->
          Format.printf "     %s = %a@."
            (Colock.Node_id.to_resource row.Query.Executor.node)
            Nf2.Value.pp row.Query.Executor.value)
        result.Query.Executor.rows
    | Error error ->
      Format.printf "  -> %a@." Query.Executor.pp_error error
  in
  run 1
    "SELECT o FROM c IN cells, o IN c.c_objects WHERE c.cell_id = 'c1' FOR READ";
  run 2
    "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND \
     r.robot_id = 'r1' FOR UPDATE";
  run 3
    "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND \
     r.robot_id = 'r2' FOR UPDATE";

  section "4. The lock table (compare with Figure 7)";
  Format.printf "%a@." Lockmgr.Lock_table.pp table;
  Printf.printf
    "\nQ1, Q2 and Q3 all run concurrently: Q1 and Q2 touch disjoint parts of\n\
     cell c1, and Q2/Q3 share effector e2 in S mode because neither may\n\
     modify the effector library (rule 4').\n"
