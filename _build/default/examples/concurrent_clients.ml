(* Real concurrent clients: OCaml 5 domains blocking on the protocol.

   Four designer clients run in parallel against one database server:
   two keep re-planning the robots of cell c1 (X), two keep reading its
   c_objects (S). The X locks serialize the writers against each other but
   never against the readers (different sub-objects of the same cell) —
   sub-object granules at work under genuine parallelism. A fifth client
   forces deadlocks by locking the two robots in the opposite order.

   Run with: dune exec examples/concurrent_clients.exe *)

module Mode = Lockmgr.Lock_mode
module Node_id = Colock.Node_id

let () =
  let db = Workload.Figure1.database ~c_objects:5 () in
  let graph = Colock.Instance_graph.build db in
  let table = Lockmgr.Lock_table.create () in
  let protocol = Colock.Protocol.create graph table in
  let blocking = Colock.Blocking.create protocol in

  let node steps = Option.get (Node_id.of_steps steps) in
  let r1 = node [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r1" ] in
  let r2 = node [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r2" ] in
  let c_objects = node [ "db1"; "seg1"; "cells"; "c1"; "c_objects" ] in

  let writes = Atomic.make 0 in
  let reads = Atomic.make 0 in
  let rounds = 200 in

  let writer ~base ~first ~second () =
    for i = 0 to rounds - 1 do
      Colock.Blocking.run_txn blocking ~txn:(base + i)
        ~locks:[ (first, Mode.X); (second, Mode.X) ]
        (fun () -> Atomic.incr writes)
    done
  in
  let reader ~base () =
    for i = 0 to rounds - 1 do
      Colock.Blocking.run_txn blocking ~txn:(base + i)
        ~locks:[ (c_objects, Mode.S) ]
        (fun () -> Atomic.incr reads)
    done
  in

  Printf.printf "spawning 5 client domains (%d transactions each)...\n%!"
    rounds;
  let clock_start = Unix.gettimeofday () in
  let domains =
    [ Domain.spawn (writer ~base:10_000 ~first:r1 ~second:r2);
      Domain.spawn (writer ~base:20_000 ~first:r1 ~second:r2);
      (* opposite order: guaranteed deadlock pressure *)
      Domain.spawn (writer ~base:30_000 ~first:r2 ~second:r1);
      Domain.spawn (reader ~base:40_000);
      Domain.spawn (reader ~base:50_000) ]
  in
  List.iter Domain.join domains;
  let elapsed = Unix.gettimeofday () -. clock_start in

  Printf.printf "done in %.3fs\n" elapsed;
  Printf.printf "  robot re-plans committed: %d (expected %d)\n"
    (Atomic.get writes) (3 * rounds);
  Printf.printf "  c_objects reads:          %d (expected %d)\n"
    (Atomic.get reads) (2 * rounds);
  Printf.printf "  locks left in the table:  %d\n"
    (Lockmgr.Lock_table.entry_count table);
  print_endline
    "\nwriters serialized on the robots, readers untouched by them, and\n\
     every deadlock was detected and its victim transparently restarted."
